//! The multi-objective data placement policy (§5.3 / OctopusFS §4).
//!
//! Placement scores every feasible `(node, tier)` candidate by a weighted
//! combination of the four objectives of the OctopusFS formulation:
//!
//! 1. **Fault tolerance** — hard constraint: replicas of a block live on
//!    distinct nodes.
//! 2. **Throughput maximization** — faster tiers score higher (ordinal by
//!    tier rank).
//! 3. **Data balancing** — emptier devices score higher.
//! 4. **Load balancing** — devices with fewer active I/O streams score
//!    higher.
//!
//! A *tier-diversity* penalty discourages stacking replicas of one block on
//! the same tier, which reproduces OctopusFS's observed behaviour: while
//! memory has room a block gets one replica on each of memory/SSD/HDD, and
//! after memory fills the replicas spread over SSD and HDD (§3.1). A
//! *locality* bonus steers replica moves toward the node that already holds
//! the source copy, so tier moves stay on-node (no network) when possible.

use crate::block::BlockInfo;
use crate::node::NodeManager;
use octo_common::{ByteSize, NodeId, StorageTier};
use serde::{Deserialize, Serialize};

/// Objective weights for [`PlacementPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementWeights {
    /// Weight of the tier-speed objective.
    pub throughput: f64,
    /// Weight of the free-space objective.
    pub data_balance: f64,
    /// Weight of the idle-device objective.
    pub load_balance: f64,
    /// Penalty per replica of the same block already on a tier.
    pub tier_diversity_penalty: f64,
    /// Bonus for placing on the preferred (source) node.
    pub locality_bonus: f64,
}

impl Default for PlacementWeights {
    fn default() -> Self {
        PlacementWeights {
            throughput: 1.0,
            data_balance: 0.35,
            load_balance: 0.15,
            tier_diversity_penalty: 1.2,
            locality_bonus: 0.3,
        }
    }
}

/// The pluggable placement policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementPolicy {
    weights: PlacementWeights,
    /// Devices are never filled beyond this fraction by placement.
    fill_limit: f64,
    /// When set, initial placement is restricted to these tiers (used by the
    /// paper's upgrade-only experiment, which forces all data onto HDD).
    allowed_initial_tiers: Vec<StorageTier>,
}

impl PlacementPolicy {
    /// A policy with the given weights and fill limit.
    pub fn new(weights: PlacementWeights, fill_limit: f64) -> Self {
        PlacementPolicy {
            weights,
            fill_limit,
            allowed_initial_tiers: StorageTier::ALL.to_vec(),
        }
    }

    /// Restricts *initial* placement to `tiers` (replica moves may still
    /// target any tier). §7.4 forces initial placement to HDD this way.
    pub fn restrict_initial_tiers(&mut self, tiers: &[StorageTier]) {
        assert!(!tiers.is_empty(), "initial tier set cannot be empty");
        self.allowed_initial_tiers = tiers.to_vec();
    }

    /// The configured weights.
    pub fn weights(&self) -> &PlacementWeights {
        &self.weights
    }

    fn fits(&self, nodes: &NodeManager, node: NodeId, tier: StorageTier, size: ByteSize) -> bool {
        let d = nodes.device(node, tier);
        let limit = ByteSize::from_bytes((d.capacity().as_bytes() as f64 * self.fill_limit) as u64);
        d.committed() + size <= limit
    }

    fn score(
        &self,
        nodes: &NodeManager,
        node: NodeId,
        tier: StorageTier,
        tier_uses: &[u32; 3],
        prefer_node: Option<NodeId>,
    ) -> f64 {
        let d = nodes.device(node, tier);
        let w = &self.weights;
        let tier_speed = tier.rank() as f64 / 2.0;
        let mut s = w.throughput * tier_speed
            + w.data_balance * (1.0 - d.utilization())
            + w.load_balance / (1.0 + d.active_io() as f64);
        s -= w.tier_diversity_penalty * tier_uses[tier.index()] as f64;
        if prefer_node == Some(node) {
            s += w.locality_bonus;
        }
        s
    }

    /// Picks the best feasible `(node, tier)` among `candidate_tiers`,
    /// excluding `exclude_nodes` (nodes already hosting this block) and
    /// applying the diversity penalty for `tier_uses`. Deterministic:
    /// ties break toward lower node id, then higher tier.
    #[allow(clippy::too_many_arguments)]
    fn best_candidate(
        &self,
        nodes: &NodeManager,
        size: ByteSize,
        candidate_tiers: &[StorageTier],
        exclude_nodes: &[NodeId],
        tier_uses: &[u32; 3],
        prefer_node: Option<NodeId>,
        allow_preferred_excluded: bool,
    ) -> Option<(NodeId, StorageTier)> {
        let mut best: Option<((NodeId, StorageTier), f64)> = None;
        for node in nodes.node_ids() {
            if !nodes.is_alive(node) {
                continue;
            }
            let excluded = exclude_nodes.contains(&node);
            if excluded && !(allow_preferred_excluded && prefer_node == Some(node)) {
                continue;
            }
            for &tier in candidate_tiers {
                if !self.fits(nodes, node, tier, size) {
                    continue;
                }
                let s = self.score(nodes, node, tier, tier_uses, prefer_node);
                let better = match &best {
                    Some((_, bs)) => s > *bs + 1e-12,
                    None => true,
                };
                if better {
                    best = Some(((node, tier), s));
                }
            }
        }
        best.map(|(c, _)| c)
    }

    /// Chooses placements for `n_replicas` copies of a new block.
    ///
    /// Returns the chosen `(node, tier)` pairs, possibly fewer than
    /// requested when the cluster is nearly full (HDFS semantics: a write
    /// proceeds with fewer replicas rather than failing). An empty result
    /// means nothing fits anywhere.
    pub fn place_new_block(
        &self,
        nodes: &NodeManager,
        size: ByteSize,
        n_replicas: u32,
    ) -> Vec<(NodeId, StorageTier)> {
        let mut chosen: Vec<(NodeId, StorageTier)> = Vec::with_capacity(n_replicas as usize);
        let mut tier_uses = [0u32; 3];
        let mut exclude = Vec::new();
        for _ in 0..n_replicas {
            let Some((node, tier)) = self.best_candidate(
                nodes,
                size,
                &self.allowed_initial_tiers,
                &exclude,
                &tier_uses,
                None,
                false,
            ) else {
                break;
            };
            tier_uses[tier.index()] += 1;
            exclude.push(node);
            chosen.push((node, tier));
        }
        chosen
    }

    /// Chooses the destination for moving one replica of `block` onto one of
    /// `allowed_tiers`.
    ///
    /// `from_node` is the node currently holding the moving replica; it is
    /// preferred (locality) and remains eligible even though it hosts the
    /// block, because the source copy vacates. Other nodes hosting replicas
    /// are excluded.
    pub fn place_move(
        &self,
        nodes: &NodeManager,
        block: &BlockInfo,
        allowed_tiers: &[StorageTier],
        from_node: NodeId,
    ) -> Option<(NodeId, StorageTier)> {
        let exclude: Vec<NodeId> = block.nodes().collect();
        let mut tier_uses = [0u32; 3];
        for r in block.replicas() {
            tier_uses[r.tier.index()] += 1;
        }
        self.best_candidate(
            nodes,
            block.size,
            allowed_tiers,
            &exclude,
            &tier_uses,
            Some(from_node),
            true,
        )
    }

    /// Chooses the node for an *additional* copy of `block` on `tier`
    /// (HDFS-cache style caching). Prefers a node already holding a replica
    /// on a lower tier — caching co-locates the memory copy with the disk
    /// copy — but that node must not already hold a copy on `tier` itself.
    pub fn place_copy(
        &self,
        nodes: &NodeManager,
        block: &BlockInfo,
        tier: StorageTier,
    ) -> Option<(NodeId, StorageTier)> {
        let holders: Vec<NodeId> = block.nodes().collect();
        // First choice: co-locate with an existing lower-tier replica.
        let mut best: Option<((NodeId, StorageTier), f64)> = None;
        let tier_uses = [0u32; 3];
        for r in block.replicas() {
            if r.tier == tier || r.dead || !nodes.is_alive(r.node) {
                continue;
            }
            if block.replica_at(r.node, tier).is_some() {
                continue;
            }
            if !self.fits(nodes, r.node, tier, block.size) {
                continue;
            }
            let s = self.score(nodes, r.node, tier, &tier_uses, None);
            if best.as_ref().is_none_or(|(_, bs)| s > *bs + 1e-12) {
                best = Some(((r.node, tier), s));
            }
        }
        if best.is_some() {
            return best.map(|(c, _)| c);
        }
        // Fallback: any node without a copy.
        self.best_candidate(
            nodes,
            block.size,
            &[tier],
            &holders,
            &tier_uses,
            None,
            false,
        )
    }

    /// Chooses the node for a *repair* copy of `block` on `tier`: a node
    /// not holding any copy (dead ones included — a recovering node must
    /// never find a duplicate of its own replica) and not in
    /// `extra_exclude` (destinations of sibling repair copies still in
    /// flight). Unlike a cache copy, fault tolerance wins over locality,
    /// so colocation is never tried.
    pub fn place_repair(
        &self,
        nodes: &NodeManager,
        block: &BlockInfo,
        tier: StorageTier,
        extra_exclude: &[NodeId],
    ) -> Option<(NodeId, StorageTier)> {
        let mut exclude: Vec<NodeId> = block.nodes().collect();
        exclude.extend_from_slice(extra_exclude);
        let mut tier_uses = [0u32; 3];
        for r in block.replicas() {
            tier_uses[r.tier.index()] += 1;
        }
        self.best_candidate(
            nodes,
            block.size,
            &[tier],
            &exclude,
            &tier_uses,
            None,
            false,
        )
    }

    /// Chooses the device for one erasure-coded shard on `tier`.
    ///
    /// Shards of a stripe must live on distinct nodes (the EC analogue of
    /// the replica fault-tolerance constraint), so callers accumulate every
    /// node already holding — or about to receive — a shard of the stripe
    /// into `exclude_nodes`. No tier-diversity penalty or locality bonus
    /// applies: all shards of a stripe belong on the stripe's home tier and
    /// spread by the data/load-balance objectives alone.
    pub fn place_shard(
        &self,
        nodes: &NodeManager,
        shard_size: ByteSize,
        tier: StorageTier,
        exclude_nodes: &[NodeId],
    ) -> Option<(NodeId, StorageTier)> {
        self.best_candidate(
            nodes,
            shard_size,
            &[tier],
            exclude_nodes,
            &[0u32; 3],
            None,
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockManager;
    use crate::config::DfsConfig;
    use octo_common::FileId;

    fn small_cluster() -> (DfsConfig, NodeManager) {
        let config = DfsConfig {
            workers: 4,
            ..DfsConfig::default()
        };
        let nodes = NodeManager::new(&config);
        (config, nodes)
    }

    fn policy() -> PlacementPolicy {
        PlacementPolicy::new(PlacementWeights::default(), 0.95)
    }

    #[test]
    fn empty_cluster_places_one_replica_per_tier() {
        let (_, nodes) = small_cluster();
        let placed = policy().place_new_block(&nodes, ByteSize::mb(128), 3);
        assert_eq!(placed.len(), 3);
        let tiers: Vec<StorageTier> = placed.iter().map(|(_, t)| *t).collect();
        assert_eq!(
            tiers,
            vec![StorageTier::Memory, StorageTier::Ssd, StorageTier::Hdd],
            "OctopusFS spreads the three replicas over the three tiers"
        );
        // Fault tolerance: three distinct nodes.
        let mut ns: Vec<NodeId> = placed.iter().map(|(n, _)| *n).collect();
        ns.dedup();
        assert_eq!(ns.len(), 3);
    }

    #[test]
    fn full_memory_shifts_placement_to_disk_tiers() {
        let (_, mut nodes) = small_cluster();
        // Fill every node's memory beyond the fill limit.
        for n in 0..4 {
            nodes
                .reserve(
                    NodeId(n),
                    StorageTier::Memory,
                    ByteSize::from_mb_f64(3900.0),
                )
                .unwrap();
        }
        let placed = policy().place_new_block(&nodes, ByteSize::mb(128), 3);
        assert_eq!(placed.len(), 3);
        assert!(
            placed.iter().all(|(_, t)| *t != StorageTier::Memory),
            "memory above the fill limit must not receive replicas: {placed:?}"
        );
        // Replicas split across SSD and HDD (1+2 or 2+1).
        let ssd = placed
            .iter()
            .filter(|(_, t)| *t == StorageTier::Ssd)
            .count();
        assert!(ssd == 1 || ssd == 2);
    }

    #[test]
    fn data_balance_spreads_nodes() {
        let (_, mut nodes) = small_cluster();
        // Node 0's memory is much fuller than the others'.
        nodes
            .reserve(NodeId(0), StorageTier::Memory, ByteSize::gb(3))
            .unwrap();
        let placed = policy().place_new_block(&nodes, ByteSize::mb(128), 1);
        assert_eq!(placed.len(), 1);
        assert_ne!(
            placed[0].0,
            NodeId(0),
            "placement should avoid the full node"
        );
        assert_eq!(placed[0].1, StorageTier::Memory);
    }

    #[test]
    fn restricted_initial_tiers() {
        let (_, nodes) = small_cluster();
        let mut p = policy();
        p.restrict_initial_tiers(&[StorageTier::Hdd]);
        let placed = p.place_new_block(&nodes, ByteSize::mb(128), 3);
        assert_eq!(placed.len(), 3);
        assert!(placed.iter().all(|(_, t)| *t == StorageTier::Hdd));
    }

    #[test]
    fn degraded_replication_when_cluster_tiny() {
        let config = DfsConfig {
            workers: 2,
            ..DfsConfig::default()
        };
        let nodes = NodeManager::new(&config);
        // 3 replicas requested but only 2 nodes exist.
        let placed = policy().place_new_block(&nodes, ByteSize::mb(128), 3);
        assert_eq!(placed.len(), 2, "one replica per node maximum");
    }

    #[test]
    fn move_prefers_source_node() {
        let (_, nodes) = small_cluster();
        let mut bm = BlockManager::new();
        let b = bm.create_block(FileId(0), 0, ByteSize::mb(128));
        bm.add_replica(b, NodeId(2), StorageTier::Memory).unwrap();
        bm.add_replica(b, NodeId(1), StorageTier::Hdd).unwrap();
        let target = policy()
            .place_move(&nodes, bm.block(b), &[StorageTier::Ssd], NodeId(2))
            .expect("ssd has room");
        assert_eq!(target, (NodeId(2), StorageTier::Ssd), "on-node move wins");
    }

    #[test]
    fn move_avoids_nodes_with_other_replicas() {
        let config = DfsConfig {
            workers: 2,
            ..DfsConfig::default()
        };
        let nodes = NodeManager::new(&config);
        let mut bm = BlockManager::new();
        let b = bm.create_block(FileId(0), 0, ByteSize::mb(128));
        bm.add_replica(b, NodeId(0), StorageTier::Memory).unwrap();
        bm.add_replica(b, NodeId(1), StorageTier::Ssd).unwrap();
        // Moving the memory replica down: node 1 already has a copy, so the
        // only legal destination is node 0 itself.
        let target = policy()
            .place_move(
                &nodes,
                bm.block(b),
                &[StorageTier::Ssd, StorageTier::Hdd],
                NodeId(0),
            )
            .expect("node 0 has room");
        assert_eq!(target.0, NodeId(0));
    }

    #[test]
    fn copy_colocates_with_existing_replica() {
        let (_, nodes) = small_cluster();
        let mut bm = BlockManager::new();
        let b = bm.create_block(FileId(0), 0, ByteSize::mb(128));
        bm.add_replica(b, NodeId(3), StorageTier::Hdd).unwrap();
        let target = policy()
            .place_copy(&nodes, bm.block(b), StorageTier::Memory)
            .expect("memory has room");
        assert_eq!(
            target,
            (NodeId(3), StorageTier::Memory),
            "cache copy lands next to the disk copy"
        );
    }

    #[test]
    fn dead_nodes_never_receive_placements() {
        let (_, mut nodes) = small_cluster();
        nodes.set_alive(NodeId(0), false);
        nodes.set_alive(NodeId(1), false);
        let placed = policy().place_new_block(&nodes, ByteSize::mb(128), 3);
        assert_eq!(placed.len(), 2, "only two nodes alive");
        assert!(placed.iter().all(|(n, _)| n.index() >= 2), "{placed:?}");
    }

    #[test]
    fn repair_placement_avoids_all_holders_dead_included() {
        let (_, nodes) = small_cluster();
        let mut bm = BlockManager::new();
        let b = bm.create_block(FileId(0), 0, ByteSize::mb(128));
        bm.add_replica(b, NodeId(0), StorageTier::Hdd).unwrap();
        bm.set_dead(b, NodeId(0), StorageTier::Hdd, true).unwrap();
        bm.add_replica(b, NodeId(1), StorageTier::Ssd).unwrap();
        let target = policy()
            .place_repair(&nodes, bm.block(b), StorageTier::Hdd, &[])
            .expect("hdd has room");
        assert_eq!(target.1, StorageTier::Hdd);
        assert!(
            target.0 != NodeId(0) && target.0 != NodeId(1),
            "repair must land on a fresh node, got {target:?}"
        );
    }

    #[test]
    fn nothing_fits_returns_empty() {
        let config = DfsConfig {
            workers: 1,
            replication: 1,
            ..DfsConfig::default()
        };
        let mut nodes = NodeManager::new(&config);
        for t in StorageTier::ALL {
            let cap = nodes.device(NodeId(0), t).capacity();
            nodes.reserve(NodeId(0), t, cap).unwrap();
        }
        let placed = policy().place_new_block(&nodes, ByteSize::mb(128), 1);
        assert!(placed.is_empty());
    }
}
