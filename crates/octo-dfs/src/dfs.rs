//! The tiered DFS facade: the Master of Figure 3.
//!
//! [`TieredDfs`] owns the namespace, file table, block manager, node manager,
//! statistics registry, placement policy and transfer table, and exposes the
//! operations the compute layer and the tiering policies drive:
//!
//! * file lifecycle — [`TieredDfs::create_file`] / [`TieredDfs::commit_file`]
//!   / [`TieredDfs::delete_file`] / [`TieredDfs::record_access`];
//! * replica movement — [`TieredDfs::plan_downgrade`],
//!   [`TieredDfs::plan_upgrade`], [`TieredDfs::plan_cache_copy`],
//!   [`TieredDfs::plan_drop_replicas`], completed or cancelled by
//!   [`TieredDfs::complete_transfer`] / [`TieredDfs::cancel_transfer`];
//! * introspection — tier utilization, per-file statistics, movement stats.
//!
//! Transfers are two-phase: planning reserves destination space and flags
//! source replicas as moving (they stay readable but cannot be re-selected);
//! completion relocates metadata and settles the space accounting. A file
//! has at most one transfer in flight, and cannot be deleted while one is.

use crate::block::{BlockInfo, BlockManager};
use crate::config::DfsConfig;
use crate::files::{FileMeta, FileState, FileTable};
use crate::namespace::{Entry, Namespace};
use crate::node::NodeManager;
use crate::placement::{PlacementPolicy, PlacementWeights};
use crate::recency::RecencyIndex;
use crate::replication::{
    BlockAction, BlockTransfer, MovementStats, Transfer, TransferId, TransferKind, TransferTable,
};
use crate::stats::{AccessStats, StatsRegistry};
use octo_common::{BlockId, ByteSize, FileId, NodeId, OctoError, Result, SimTime, StorageTier};

/// Where a downgrade should land (§5.3: normally the placement policy picks
/// the tier; `Delete` reproduces plain cache eviction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DowngradeTarget {
    /// Let the multi-objective placement policy pick among all lower tiers.
    Auto,
    /// Force a specific lower tier.
    Tier(StorageTier),
    /// Delete the replica instead of moving it.
    Delete,
}

/// What a node crash or disk loss did to the DFS (input for the simulator,
/// which must cancel the I/O flows of the cancelled transfers and fail the
/// reads that were being served by the node).
#[derive(Debug, Clone, Default)]
pub struct NodeFailure {
    /// In-flight transfers cancelled because an action touched the node.
    pub cancelled_transfers: Vec<TransferId>,
    /// Replicas destroyed for good (memory contents, or the lost device).
    pub lost_replicas: u64,
    /// Bytes those destroyed replicas held.
    pub lost_bytes: ByteSize,
    /// Disk replicas marked dead (offline until the node recovers).
    pub offlined_replicas: u64,
    /// Erasure-coded stripe shards marked dead (offline until the node
    /// recovers).
    pub offlined_shards: u64,
    /// Erasure-coded stripe shards destroyed for good (device loss).
    pub lost_shards: u64,
}

/// The replica layout chosen for one new block.
#[derive(Debug, Clone)]
pub struct BlockWrite {
    /// The new block.
    pub block: BlockId,
    /// Bytes in this block.
    pub size: ByteSize,
    /// Chosen `(node, tier)` for each replica.
    pub replicas: Vec<(NodeId, StorageTier)>,
}

/// Result of [`TieredDfs::create_file`]: what the client pipeline must write.
#[derive(Debug, Clone)]
pub struct WritePlan {
    /// The new file.
    pub file: FileId,
    /// Per-block replica layouts.
    pub blocks: Vec<BlockWrite>,
}

/// The tiered distributed file system.
#[derive(Debug)]
pub struct TieredDfs {
    config: DfsConfig,
    ns: Namespace,
    files: FileTable,
    blocks: BlockManager,
    nodes: NodeManager,
    stats: StatsRegistry,
    recency: RecencyIndex,
    placement: PlacementPolicy,
    transfers: TransferTable,
}

impl TieredDfs {
    /// Builds a DFS over the configured cluster with default placement.
    pub fn new(config: DfsConfig) -> Result<Self> {
        let placement =
            PlacementPolicy::new(PlacementWeights::default(), config.placement_fill_limit);
        Self::with_placement(config, placement)
    }

    /// Builds a DFS with a custom placement policy.
    pub fn with_placement(config: DfsConfig, placement: PlacementPolicy) -> Result<Self> {
        config.validate()?;
        Ok(TieredDfs {
            nodes: NodeManager::new(&config),
            stats: StatsRegistry::with_heat(config.access_history, config.heat),
            recency: RecencyIndex::new(),
            ns: Namespace::new(),
            files: FileTable::new(),
            blocks: BlockManager::with_target(config.replication),
            placement,
            transfers: TransferTable::new(),
            config,
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// The heat-score parameters the statistics registry folds under
    /// (policies use these to decay stored heats to "now").
    pub fn heat_config(&self) -> &crate::stats::HeatConfig {
        self.stats.heat_config()
    }

    /// Mutable access to the placement policy (e.g. to restrict initial
    /// tiers for the HDFS baseline scenarios).
    pub fn placement_mut(&mut self) -> &mut PlacementPolicy {
        &mut self.placement
    }

    // ------------------------------------------------------------------
    // File lifecycle
    // ------------------------------------------------------------------

    /// Creates a file of `size` at `path` and chooses replica placements for
    /// each of its blocks. Destination space is reserved; the file becomes
    /// readable after [`TieredDfs::commit_file`].
    pub fn create_file(&mut self, path: &str, size: ByteSize, now: SimTime) -> Result<WritePlan> {
        let file = self.files.insert(path, size, now);
        if let Err(e) = self.ns.create_file(path, file) {
            self.files.remove(file);
            return Err(e);
        }

        let n_blocks = size.blocks_of(self.config.block_size);
        let mut plan_blocks = Vec::with_capacity(n_blocks as usize);
        let mut remaining = size;
        let mut rollback_ok = true;
        for index in 0..n_blocks {
            let bsize = remaining
                .min(self.config.block_size)
                .max(ByteSize::from_bytes(1));
            remaining = remaining.saturating_sub(self.config.block_size);
            let placements =
                self.placement
                    .place_new_block(&self.nodes, bsize, self.config.replication);
            if placements.is_empty() {
                rollback_ok = false;
                break;
            }
            let block = self.blocks.create_block(file, index as u32, bsize);
            for &(node, tier) in &placements {
                self.nodes
                    .reserve(node, tier, bsize)
                    .expect("placement verified capacity");
                self.blocks
                    .add_replica(block, node, tier)
                    .expect("placement picked distinct nodes");
            }
            self.files
                .get_mut(file)
                .expect("file just inserted")
                .blocks
                .push(block);
            plan_blocks.push(BlockWrite {
                block,
                size: bsize,
                replicas: placements,
            });
        }

        if !rollback_ok {
            // Cluster out of space: undo everything.
            for bw in &plan_blocks {
                for &(node, tier) in &bw.replicas {
                    self.nodes.release_reserved(node, tier, bw.size);
                }
                self.blocks.delete_block(bw.block);
            }
            self.ns.delete(path, false).expect("file path just created");
            self.files.remove(file);
            return Err(OctoError::OutOfCapacity(format!(
                "no tier can hold a block of {path:?}"
            )));
        }

        Ok(WritePlan {
            file,
            blocks: plan_blocks,
        })
    }

    /// Marks a file fully written: settles reservations, makes it readable,
    /// and starts tracking its access statistics.
    pub fn commit_file(&mut self, file: FileId, now: SimTime) -> Result<()> {
        let meta = self
            .files
            .get(file)
            .ok_or_else(|| OctoError::NotFound(format!("{file}")))?;
        if meta.state != FileState::Writing {
            return Err(OctoError::InvalidState(format!("{file} already committed")));
        }
        let size = meta.size;
        for &b in &meta.blocks {
            let info = self.blocks.block(b);
            let bsize = info.size;
            for r in info.replicas() {
                self.nodes.commit_reserved(r.node, r.tier, bsize);
            }
        }
        self.files.set_complete(file);
        self.stats.on_create(file, size, now);
        self.recency.insert(file, now);
        for tier in StorageTier::ALL {
            if self.blocks.file_on_tier(file, tier) {
                self.recency.set_resident(file, tier, true);
            }
        }
        Ok(())
    }

    /// Records a read access to a committed file.
    pub fn record_access(&mut self, file: FileId, now: SimTime) -> Result<()> {
        let meta = self
            .files
            .get(file)
            .ok_or_else(|| OctoError::NotFound(format!("{file}")))?;
        if meta.state != FileState::Complete {
            return Err(OctoError::InvalidState(format!("{file} is still writing")));
        }
        self.stats.on_access(file, now);
        self.recency.touch(file, now);
        Ok(())
    }

    /// Deletes a committed file, freeing all replica space. Fails while a
    /// transfer is in flight for it.
    pub fn delete_file(&mut self, file: FileId) -> Result<ByteSize> {
        let meta = self
            .files
            .get(file)
            .ok_or_else(|| OctoError::NotFound(format!("{file}")))?;
        if meta.in_flight > 0 {
            return Err(OctoError::InvalidState(format!(
                "{file} has transfers in flight"
            )));
        }
        if meta.state != FileState::Complete {
            return Err(OctoError::InvalidState(format!("{file} is still writing")));
        }
        let mut freed = ByteSize::ZERO;
        for &b in &meta.blocks {
            let size = self.blocks.block(b).size;
            if let Some(s) = self.blocks.take_stripe(b) {
                for sh in &s.shards {
                    self.nodes.free_used(sh.node, sh.tier, s.shard_size);
                    freed += s.shard_size;
                }
            }
            for replica in self.blocks.delete_block(b) {
                self.nodes.free_used(replica.node, replica.tier, size);
                freed += size;
            }
        }
        self.ns.delete(&meta.path, false)?;
        self.files.remove(file);
        self.stats.on_delete(file);
        self.recency.remove(file);
        Ok(freed)
    }

    // ------------------------------------------------------------------
    // Replica movement (the Replication Manager's verbs)
    // ------------------------------------------------------------------

    fn movable_file(&self, file: FileId) -> Result<&FileMeta> {
        let meta = self
            .files
            .get(file)
            .ok_or_else(|| OctoError::NotFound(format!("{file}")))?;
        if meta.state != FileState::Complete {
            return Err(OctoError::InvalidState(format!("{file} is still writing")));
        }
        if meta.in_flight > 0 {
            return Err(OctoError::InvalidState(format!(
                "{file} already has a transfer in flight"
            )));
        }
        Ok(meta)
    }

    /// True if the policy may schedule a transfer for `file` right now.
    pub fn is_movable(&self, file: FileId) -> bool {
        self.movable_file(file).is_ok()
    }

    /// The `i`-th block of a live file, if both exist. Lets the planning
    /// loops walk a file's blocks without cloning the block list while
    /// they mutate reservation state.
    fn nth_block(&self, file: FileId, i: usize) -> Option<BlockId> {
        self.files.get(file).and_then(|m| m.blocks.get(i).copied())
    }

    fn finish_plan(
        &mut self,
        file: FileId,
        kind: TransferKind,
        actions: Vec<BlockTransfer>,
    ) -> TransferId {
        for bt in &actions {
            match bt.action {
                BlockAction::Move { from, .. } | BlockAction::Drop { from } => {
                    self.blocks
                        .set_moving(bt.block, from.0, from.1, true)
                        .expect("source replica exists");
                }
                // EC actions read from a replica that a companion Drop
                // already flagged, or from stripe shards (which have no
                // moving flag — the file-level in-flight guard serializes
                // transfers per file).
                BlockAction::Copy { .. }
                | BlockAction::EcWrite { .. }
                | BlockAction::EcRebuild { .. }
                | BlockAction::Unstripe { .. } => {}
            }
        }
        self.files.get_mut(file).expect("validated").in_flight += 1;
        self.transfers.insert(file, kind, actions)
    }

    fn rollback_reservations(&mut self, actions: &[BlockTransfer]) {
        for bt in actions {
            if let Some((node, tier)) = bt.action.destination() {
                self.nodes.release_reserved(node, tier, bt.size);
            }
        }
    }

    /// Plans striping one block into EC(k, m) on `ec_tier`: places the
    /// `k + m` shards on distinct live nodes (home tier first, spilling to
    /// lower tiers when full) and reserves their space. Appends the shard
    /// writes plus a drop of the source replica to `actions`; on placement
    /// failure everything reserved for this block is rolled back and
    /// `false` returned so the caller can fall back.
    fn try_plan_stripe(
        &mut self,
        block: BlockId,
        src: (NodeId, StorageTier),
        ec_tier: StorageTier,
        actions: &mut Vec<BlockTransfer>,
    ) -> bool {
        let (k, m) = self
            .config
            .erasure_for(ec_tier)
            .expect("caller checked the tier is EC-configured");
        let size = self.blocks.block(block).size;
        let ssize = crate::ec::shard_size(size, k);
        let mut exclude: Vec<NodeId> = Vec::new();
        let mut shards: Vec<BlockTransfer> = Vec::new();
        for index in 0..(k + m) {
            let placed = std::iter::once(ec_tier)
                .chain(ec_tier.tiers_below())
                .find_map(|t| self.placement.place_shard(&self.nodes, ssize, t, &exclude));
            let Some(to) = placed else {
                self.rollback_reservations(&shards);
                return false;
            };
            self.nodes
                .reserve(to.0, to.1, ssize)
                .expect("place_shard verified capacity");
            exclude.push(to.0);
            shards.push(BlockTransfer {
                block,
                size: ssize,
                action: BlockAction::EcWrite {
                    from: src,
                    to,
                    index,
                },
            });
        }
        actions.append(&mut shards);
        actions.push(BlockTransfer {
            block,
            size,
            action: BlockAction::Drop { from: src },
        });
        true
    }

    /// Plans moving `file`'s replicas *off* `from_tier` (§5). Each block
    /// replica on that tier is moved to the placement-chosen lower tier, or
    /// deleted when `target` is [`DowngradeTarget::Delete`] or no lower tier
    /// has room. Replicated destination tiers are preferred; when only an
    /// `Erasure`-configured tier remains (the cold-archive case) the block
    /// is striped into `k + m` shards there instead of moved whole, and a
    /// block whose stripe already exists simply drops the source replica —
    /// the stripe keeps protecting the data.
    pub fn plan_downgrade(
        &mut self,
        file: FileId,
        from_tier: StorageTier,
        target: DowngradeTarget,
    ) -> Result<TransferId> {
        self.movable_file(file)?;
        let mut actions: Vec<BlockTransfer> = Vec::new();
        let mut i = 0;
        while let Some(b) = self.nth_block(file, i) {
            i += 1;
            let info = self.blocks.block(b);
            let Some(rep) = info.replica_on_tier(from_tier) else {
                continue;
            };
            let src = (rep.node, from_tier);
            let size = info.size;
            let action = match target {
                DowngradeTarget::Delete => BlockAction::Drop { from: src },
                DowngradeTarget::Auto | DowngradeTarget::Tier(_) => {
                    let allowed: Vec<StorageTier> = match target {
                        DowngradeTarget::Tier(t) => {
                            if !from_tier.is_higher_than(t) {
                                self.rollback_reservations(&actions);
                                return Err(OctoError::InvalidArgument(format!(
                                    "{t} is not below {from_tier}"
                                )));
                            }
                            vec![t]
                        }
                        _ => from_tier.tiers_below().collect(),
                    };
                    if self.blocks.stripe(b).is_some_and(|s| s.is_readable()) {
                        // Already erasure-coded below: the replica leaving
                        // `from_tier` needs no new home.
                        BlockAction::Drop { from: src }
                    } else {
                        let replicated: Vec<StorageTier> = allowed
                            .iter()
                            .copied()
                            .filter(|t| self.config.erasure_for(*t).is_none())
                            .collect();
                        let ec_tier = allowed
                            .iter()
                            .copied()
                            .find(|t| self.config.erasure_for(*t).is_some());
                        match self
                            .placement
                            .place_move(&self.nodes, info, &replicated, src.0)
                        {
                            Some(to) => {
                                self.nodes
                                    .reserve(to.0, to.1, size)
                                    .expect("place_move verified capacity");
                                BlockAction::Move { from: src, to }
                            }
                            None => {
                                let striped = ec_tier.is_some_and(|t| {
                                    self.blocks.stripe(b).is_none()
                                        && self.try_plan_stripe(b, src, t, &mut actions)
                                });
                                if striped {
                                    // try_plan_stripe appended the shard
                                    // writes and the source drop itself.
                                    continue;
                                }
                                // Nothing below has room: evict, don't stall.
                                BlockAction::Drop { from: src }
                            }
                        }
                    }
                }
            };
            actions.push(BlockTransfer {
                block: b,
                size,
                action,
            });
        }
        if actions.is_empty() {
            return Err(OctoError::NotFound(format!(
                "{file} has no movable replica on {from_tier}"
            )));
        }
        Ok(self.finish_plan(file, TransferKind::Downgrade, actions))
    }

    /// Plans moving `file` *onto* `to_tier` (§6): for every block lacking a
    /// replica there, its lowest-tier replica is moved up — or, for a block
    /// that lives only as an erasure-coded stripe, the stripe is decoded
    /// into a fresh replica on `to_tier` (the stripe is deleted at
    /// completion; the repair planner then re-replicates the block up to
    /// the target). All-or-nothing: if any block cannot be placed, the
    /// whole plan is abandoned.
    pub fn plan_upgrade(&mut self, file: FileId, to_tier: StorageTier) -> Result<TransferId> {
        self.movable_file(file)?;
        let mut actions: Vec<BlockTransfer> = Vec::new();
        let mut fully_present = true;
        let mut i = 0;
        while let Some(b) = self.nth_block(file, i) {
            i += 1;
            let info = self.blocks.block(b);
            if info.replica_on_tier(to_tier).is_some() {
                continue;
            }
            fully_present = false;
            // Move the slowest copy up; replicas at or above the target stay.
            let src = info
                .replicas()
                .iter()
                .filter(|r| !r.moving && !r.dead && to_tier.is_higher_than(r.tier))
                .min_by_key(|r| (r.tier.rank(), r.node))
                .copied();
            let size = info.size;
            let Some(src) = src else {
                // No whole replica below — decode the stripe if it can
                // still serve reads (>= k live shards).
                let anchor = self
                    .blocks
                    .stripe(b)
                    .filter(|s| s.is_readable())
                    .and_then(|s| {
                        s.shards
                            .iter()
                            .filter(|sh| !sh.dead)
                            .max_by_key(|sh| (sh.tier.rank(), std::cmp::Reverse(sh.node)))
                            .map(|sh| (sh.node, sh.tier))
                    });
                let Some(anchor) = anchor else {
                    self.rollback_reservations(&actions);
                    return Err(OctoError::InvalidState(format!(
                        "{b} has no movable replica below {to_tier}"
                    )));
                };
                let info = self.blocks.block(b);
                let Some(to) = self
                    .placement
                    .place_move(&self.nodes, info, &[to_tier], anchor.0)
                else {
                    self.rollback_reservations(&actions);
                    return Err(OctoError::OutOfCapacity(format!(
                        "{to_tier} cannot hold {b} ({size})"
                    )));
                };
                self.nodes
                    .reserve(to.0, to.1, size)
                    .expect("place_move verified capacity");
                actions.push(BlockTransfer {
                    block: b,
                    size,
                    action: BlockAction::Unstripe { from: anchor, to },
                });
                continue;
            };
            let Some(to) = self
                .placement
                .place_move(&self.nodes, info, &[to_tier], src.node)
            else {
                self.rollback_reservations(&actions);
                return Err(OctoError::OutOfCapacity(format!(
                    "{to_tier} cannot hold {b} ({size})"
                )));
            };
            self.nodes
                .reserve(to.0, to.1, size)
                .expect("place_move verified capacity");
            actions.push(BlockTransfer {
                block: b,
                size,
                action: BlockAction::Move {
                    from: (src.node, src.tier),
                    to,
                },
            });
        }
        if fully_present {
            return Err(OctoError::AlreadyExists(format!(
                "{file} is already fully on {to_tier}"
            )));
        }
        if actions.is_empty() {
            return Err(OctoError::InvalidState(format!(
                "{file} has no movable replicas below {to_tier}"
            )));
        }
        Ok(self.finish_plan(file, TransferKind::Upgrade, actions))
    }

    /// Plans HDFS-cache style caching: an *additional* replica of every
    /// block on `tier`, leaving existing replicas in place. All-or-nothing.
    pub fn plan_cache_copy(&mut self, file: FileId, tier: StorageTier) -> Result<TransferId> {
        self.movable_file(file)?;
        let mut actions: Vec<BlockTransfer> = Vec::new();
        let mut fully_present = true;
        let mut i = 0;
        while let Some(b) = self.nth_block(file, i) {
            i += 1;
            let info = self.blocks.block(b);
            if info.replica_on_tier(tier).is_some() {
                continue;
            }
            fully_present = false;
            // Read from the fastest live copy.
            let src = info
                .replicas()
                .iter()
                .filter(|r| !r.moving && !r.dead && r.tier != tier)
                .max_by_key(|r| (r.tier.rank(), std::cmp::Reverse(r.node)))
                .copied();
            let Some(src) = src else {
                self.rollback_reservations(&actions);
                return Err(OctoError::InvalidState(format!("{b} has no live replica")));
            };
            let size = info.size;
            let Some(to) = self.placement.place_copy(&self.nodes, info, tier) else {
                self.rollback_reservations(&actions);
                return Err(OctoError::OutOfCapacity(format!(
                    "{tier} cannot hold a copy of {b}"
                )));
            };
            self.nodes
                .reserve(to.0, to.1, size)
                .expect("place_copy verified capacity");
            actions.push(BlockTransfer {
                block: b,
                size,
                action: BlockAction::Copy {
                    from: (src.node, src.tier),
                    to,
                },
            });
        }
        if fully_present {
            return Err(OctoError::AlreadyExists(format!(
                "{file} is already fully on {tier}"
            )));
        }
        Ok(self.finish_plan(file, TransferKind::Upgrade, actions))
    }

    /// Plans deleting every replica of `file` on `tier` (cache eviction —
    /// no data moves).
    pub fn plan_drop_replicas(&mut self, file: FileId, tier: StorageTier) -> Result<TransferId> {
        self.movable_file(file)?;
        let mut actions = Vec::new();
        let mut i = 0;
        while let Some(b) = self.nth_block(file, i) {
            i += 1;
            let info = self.blocks.block(b);
            if let Some(rep) = info.replica_on_tier(tier) {
                actions.push(BlockTransfer {
                    block: b,
                    size: info.size,
                    action: BlockAction::Drop {
                        from: (rep.node, tier),
                    },
                });
            }
        }
        if actions.is_empty() {
            return Err(OctoError::NotFound(format!(
                "{file} has no movable replica on {tier}"
            )));
        }
        Ok(self.finish_plan(file, TransferKind::Downgrade, actions))
    }

    /// Applies a finished transfer: relocates/creates/drops replicas and
    /// settles the space accounting.
    pub fn complete_transfer(&mut self, id: TransferId) -> Result<Transfer> {
        let t = self
            .transfers
            .complete(id)
            .ok_or_else(|| OctoError::NotFound(format!("{id}")))?;
        for bt in &t.blocks {
            match bt.action {
                BlockAction::Move { from, to } => {
                    self.blocks.relocate_replica(bt.block, from, to)?;
                    self.nodes.commit_reserved(to.0, to.1, bt.size);
                    self.nodes.free_used(from.0, from.1, bt.size);
                }
                BlockAction::Copy { to, .. } => {
                    self.blocks.add_replica(bt.block, to.0, to.1)?;
                    self.nodes.commit_reserved(to.0, to.1, bt.size);
                }
                BlockAction::Drop { from } => {
                    self.blocks.remove_replica(bt.block, from.0, from.1)?;
                    self.nodes.free_used(from.0, from.1, bt.size);
                }
                BlockAction::EcWrite { to, index, .. } => {
                    let (k, m) = self
                        .config
                        .erasure_for(to.1)
                        .expect("EcWrite planned against an EC tier");
                    self.blocks.ensure_stripe(bt.block, to.1, k, m, bt.size);
                    let replaced = self.blocks.add_shard(
                        bt.block,
                        crate::ec::ShardLoc {
                            node: to.0,
                            tier: to.1,
                            index,
                            dead: false,
                        },
                    )?;
                    self.nodes.commit_reserved(to.0, to.1, bt.size);
                    if let Some(old) = replaced {
                        self.nodes.free_used(old.node, old.tier, bt.size);
                    }
                }
                BlockAction::EcRebuild { to, index, .. } => {
                    let replaced = self.blocks.add_shard(
                        bt.block,
                        crate::ec::ShardLoc {
                            node: to.0,
                            tier: to.1,
                            index,
                            dead: false,
                        },
                    )?;
                    self.nodes.commit_reserved(to.0, to.1, bt.size);
                    if let Some(old) = replaced {
                        self.nodes.free_used(old.node, old.tier, bt.size);
                    }
                    self.blocks.note_stripe_rebuilt();
                }
                BlockAction::Unstripe { to, .. } => {
                    self.blocks.add_replica(bt.block, to.0, to.1)?;
                    self.nodes.commit_reserved(to.0, to.1, bt.size);
                    let s = self
                        .blocks
                        .take_stripe(bt.block)
                        .expect("Unstripe planned against a striped block");
                    for sh in &s.shards {
                        self.nodes.free_used(sh.node, sh.tier, s.shard_size);
                    }
                }
            }
        }
        let meta = self
            .files
            .get_mut(t.file)
            .expect("files with transfers in flight cannot be deleted");
        meta.in_flight -= 1;
        // Replicas changed tiers: re-sync the file's recency-index residency.
        for tier in StorageTier::ALL {
            self.recency
                .set_resident(t.file, tier, self.blocks.file_on_tier(t.file, tier));
        }
        Ok(t)
    }

    /// Abandons an in-flight transfer: releases reservations and unflags
    /// source replicas.
    pub fn cancel_transfer(&mut self, id: TransferId) -> Result<()> {
        let t = self
            .transfers
            .cancel(id)
            .ok_or_else(|| OctoError::NotFound(format!("{id}")))?;
        for bt in &t.blocks {
            if let Some((node, tier)) = bt.action.destination() {
                self.nodes.release_reserved(node, tier, bt.size);
            }
            match bt.action {
                BlockAction::Move { from, .. } | BlockAction::Drop { from } => {
                    self.blocks
                        .set_moving(bt.block, from.0, from.1, false)
                        .expect("source replica exists");
                }
                BlockAction::Copy { .. }
                | BlockAction::EcWrite { .. }
                | BlockAction::EcRebuild { .. }
                | BlockAction::Unstripe { .. } => {}
            }
        }
        self.files
            .get_mut(t.file)
            .expect("in-flight file exists")
            .in_flight -= 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fault handling (node crashes, recoveries, disk losses) and repair
    // ------------------------------------------------------------------

    /// Recomputes a committed file's recency-index residency on `tier`
    /// after replicas were destroyed.
    fn resync_residency(&mut self, file: FileId, tier: StorageTier) {
        if self
            .files
            .get(file)
            .is_some_and(|m| m.state == FileState::Complete)
        {
            self.recency
                .set_resident(file, tier, self.blocks.file_on_tier(file, tier));
        }
    }

    /// Releases the space a destroyed replica held: reservations for files
    /// still being written, used bytes otherwise.
    fn free_destroyed(&mut self, file: FileId, at: (NodeId, StorageTier), size: ByteSize) {
        let writing = self
            .files
            .get(file)
            .is_some_and(|m| m.state == FileState::Writing);
        if writing {
            self.nodes.release_reserved(at.0, at.1, size);
        } else {
            self.nodes.free_used(at.0, at.1, size);
        }
    }

    /// Takes `node` down. In-flight transfers touching the node are
    /// cancelled (reservations released, moving flags cleared), its
    /// memory-tier replicas are destroyed — DRAM does not survive a crash —
    /// and its disk-tier replicas are marked dead: unreadable, excluded
    /// from the live replication factor, but restored by
    /// [`TieredDfs::recover_node`]. All incremental state (tier accounting,
    /// pending-byte counters, recency indexes, degraded set) stays
    /// consistent.
    pub fn fail_node(&mut self, node: NodeId) -> Result<NodeFailure> {
        if !self.nodes.is_alive(node) {
            return Err(OctoError::InvalidState(format!("{node} is already down")));
        }
        let mut failure = NodeFailure {
            cancelled_transfers: self.transfers.ids_touching_node(node),
            ..NodeFailure::default()
        };
        for &id in &failure.cancelled_transfers {
            self.cancel_transfer(id).expect("listed transfer in flight");
        }
        for (block, tier, moving, dead) in self.blocks.replicas_on_node(node) {
            debug_assert!(!moving, "transfers touching the node were cancelled");
            debug_assert!(!dead, "the node was up until now");
            let info = self.blocks.block(block);
            let (file, size) = (info.file, info.size);
            if tier == StorageTier::Memory {
                self.blocks
                    .remove_replica(block, node, tier)
                    .expect("replica listed by the scan");
                self.blocks.note_lost_tier(block, tier);
                self.free_destroyed(file, (node, tier), size);
                self.resync_residency(file, tier);
                failure.lost_replicas += 1;
                failure.lost_bytes += size;
            } else {
                self.blocks
                    .set_dead(block, node, tier, true)
                    .expect("replica listed by the scan");
                failure.offlined_replicas += 1;
            }
        }
        // Stripe shards never live in memory (validation bars EC there), so
        // a crash only takes them offline — like disk replicas.
        for (block, index, tier, dead) in self.blocks.shards_on_node(node) {
            debug_assert!(!dead, "the node was up until now");
            debug_assert!(tier != StorageTier::Memory, "no EC on the memory tier");
            self.blocks
                .set_shard_dead(block, node, index, true)
                .expect("shard listed by the scan");
            failure.offlined_shards += 1;
        }
        self.nodes.set_alive(node, false);
        Ok(failure)
    }

    /// Brings `node` back up: its dead disk replicas become readable again
    /// and count toward the live replication factor. Returns how many
    /// replicas came back. (Memory replicas destroyed by the crash stay
    /// gone — re-replicating them is the repair planner's job.)
    pub fn recover_node(&mut self, node: NodeId) -> Result<u64> {
        if self.nodes.is_alive(node) {
            return Err(OctoError::InvalidState(format!("{node} is already up")));
        }
        self.nodes.set_alive(node, true);
        let mut restored = 0;
        for (block, tier, _moving, dead) in self.blocks.replicas_on_node(node) {
            if dead {
                self.blocks
                    .set_dead(block, node, tier, false)
                    .expect("replica listed by the scan");
                restored += 1;
            }
        }
        // Dead shards come back too. A shard a completed rebuild superseded
        // while the node was down is no longer listed (the rebuild removed
        // it and freed its space), so no duplicate can revive.
        for (block, index, _tier, dead) in self.blocks.shards_on_node(node) {
            if dead {
                self.blocks
                    .set_shard_dead(block, node, index, false)
                    .expect("shard listed by the scan");
                restored += 1;
            }
        }
        Ok(restored)
    }

    /// Permanently destroys the contents of the device `(node, tier)`: the
    /// node stays up, the device comes back empty (a replaced disk).
    /// Transfers touching the device are cancelled; replicas on it are
    /// removed and their space freed. Blocks whose last replica lived there
    /// are lost for good.
    pub fn lose_device(&mut self, node: NodeId, tier: StorageTier) -> Result<NodeFailure> {
        let mut failure = NodeFailure {
            cancelled_transfers: self.transfers.ids_touching_device(node, tier),
            ..NodeFailure::default()
        };
        for &id in &failure.cancelled_transfers {
            self.cancel_transfer(id).expect("listed transfer in flight");
        }
        for (block, rtier, moving, _dead) in self.blocks.replicas_on_node(node) {
            if rtier != tier {
                continue;
            }
            debug_assert!(!moving, "transfers touching the device were cancelled");
            let info = self.blocks.block(block);
            let (file, size) = (info.file, info.size);
            self.blocks
                .remove_replica(block, node, tier)
                .expect("replica listed by the scan");
            self.blocks.note_lost_tier(block, tier);
            self.free_destroyed(file, (node, tier), size);
            self.resync_residency(file, tier);
            failure.lost_replicas += 1;
            failure.lost_bytes += size;
        }
        for (block, index, stier, _dead) in self.blocks.shards_on_node(node) {
            if stier != tier {
                continue;
            }
            let (file, ssize) = {
                let s = self.blocks.stripe(block).expect("shard listed by the scan");
                (s.file, s.shard_size)
            };
            self.blocks
                .remove_shard(block, node, index)
                .expect("shard listed by the scan");
            self.free_destroyed(file, (node, tier), ssize);
            self.resync_residency(file, tier);
            failure.lost_shards += 1;
            failure.lost_bytes += ssize;
        }
        Ok(failure)
    }

    /// Plans re-replication of `file`'s under-replicated blocks: for every
    /// block with fewer live replicas than the configured factor, copies
    /// from the fastest live replica onto fresh nodes. Tier-aware: each
    /// missing copy preferably lands on the tier where a dead replica sits
    /// (re-creating what the crash took offline), falling back to the
    /// source's tier, spilling to lower tiers when full. Partial repair is
    /// allowed — blocks that cannot be repaired right now are skipped and
    /// picked up by a later epoch.
    ///
    /// Striped blocks repair by *reconstruction* instead: every stripe
    /// index lacking a live shard gets an [`BlockAction::EcRebuild`] onto a
    /// fresh node (home tier first, spilling down), provided at least `k`
    /// shards survive to decode from. Both repair flavors ride the same
    /// transfer and share the planner's byte budget, so replication and EC
    /// repairs interleave deterministically.
    pub fn plan_repair(&mut self, file: FileId) -> Result<TransferId> {
        self.movable_file(file)?;
        let target = self.config.replication as usize;
        let mut actions: Vec<BlockTransfer> = Vec::new();
        let mut i = 0;
        while let Some(b) = self.nth_block(file, i) {
            i += 1;
            if self.blocks.stripe(b).is_some() {
                self.plan_stripe_rebuilds(b, &mut actions);
                continue;
            }
            let info = self.blocks.block(b);
            let live = info.live_replicas();
            if live >= target {
                continue;
            }
            // Read from the fastest live copy; none ⇒ the block is
            // unavailable (recoverable only if its node comes back).
            let Some(src) = info
                .replicas()
                .iter()
                .filter(|r| !r.moving && !r.dead)
                .max_by_key(|r| (r.tier.rank(), std::cmp::Reverse(r.node)))
                .copied()
            else {
                continue;
            };
            // What was lost, fastest loss first: tiers of dead replicas
            // (offline, may return) then tiers faults destroyed outright.
            let mut lost: Vec<StorageTier> = info
                .replicas()
                .iter()
                .filter(|r| r.dead)
                .map(|r| r.tier)
                .collect();
            lost.extend_from_slice(self.blocks.lost_tiers(b));
            let size = info.size;
            // Repair copies planned for this block must land on distinct
            // nodes, but they only materialize at completion: exclude the
            // in-plan destinations by hand.
            let mut extra_exclude: Vec<NodeId> = Vec::new();
            for k in 0..(target - live) {
                let preferred = lost.get(k).copied().unwrap_or(src.tier);
                let info = self.blocks.block(b);
                let placed = std::iter::once(preferred)
                    .chain(preferred.tiers_below())
                    .find_map(|t| {
                        self.placement
                            .place_repair(&self.nodes, info, t, &extra_exclude)
                    });
                let Some(to) = placed else {
                    continue;
                };
                self.nodes
                    .reserve(to.0, to.1, size)
                    .expect("place_repair verified capacity");
                extra_exclude.push(to.0);
                actions.push(BlockTransfer {
                    block: b,
                    size,
                    action: BlockAction::Copy {
                        from: (src.node, src.tier),
                        to,
                    },
                });
            }
        }
        if actions.is_empty() {
            return Err(OctoError::NotFound(format!(
                "{file} has nothing repairable right now"
            )));
        }
        Ok(self.finish_plan(file, TransferKind::Repair, actions))
    }

    /// Appends reconstruction rebuilds for every missing shard of `block`'s
    /// stripe (no-op when the stripe is healthy, or unreadable — fewer than
    /// `k` survivors cannot decode anything).
    fn plan_stripe_rebuilds(&mut self, block: BlockId, actions: &mut Vec<BlockTransfer>) {
        let Some((home, ssize, missing, anchor, mut exclude)) =
            self.blocks.stripe(block).and_then(|s| {
                if s.is_fully_redundant() || !s.is_readable() {
                    return None;
                }
                let anchor = s
                    .shards
                    .iter()
                    .filter(|sh| !sh.dead)
                    .max_by_key(|sh| (sh.tier.rank(), std::cmp::Reverse(sh.node)))?;
                Some((
                    s.home,
                    s.shard_size,
                    s.missing_indices(),
                    (anchor.node, anchor.tier),
                    s.nodes().collect::<Vec<NodeId>>(),
                ))
            })
        else {
            return;
        };
        for index in missing {
            let placed = std::iter::once(home)
                .chain(home.tiers_below())
                .find_map(|t| self.placement.place_shard(&self.nodes, ssize, t, &exclude));
            let Some(to) = placed else {
                continue;
            };
            self.nodes
                .reserve(to.0, to.1, ssize)
                .expect("place_shard verified capacity");
            exclude.push(to.0);
            actions.push(BlockTransfer {
                block,
                size: ssize,
                action: BlockAction::EcRebuild {
                    from: anchor,
                    to,
                    index,
                },
            });
        }
    }

    /// Committed files with at least one under-*redundant* block, ascending
    /// by id, as `(file, min live redundancy units over its blocks,
    /// target)`. A block is under-redundant when its live replica count is
    /// below the target — or, for a striped block, when any of its `k + m`
    /// shards is not live. A degraded-but-reconstructable EC file (at most
    /// `m` shards lost per stripe) shows up here, **not** in
    /// [`TieredDfs::lost_files`]. Walks the incrementally-maintained
    /// degraded set — no namespace scan — so the Replication Monitor, the
    /// repair planner, and the tests all share one source of truth.
    ///
    /// The middle element counts live replicas for replicated blocks and
    /// live shards for striped ones (whose per-block target is `k + m`, not
    /// the returned replication target).
    pub fn under_redundant_files(&self) -> impl Iterator<Item = (FileId, usize, usize)> + '_ {
        let target = self.config.replication as usize;
        self.blocks.degraded_files().filter_map(move |f| {
            let meta = self.files.get(f)?;
            if meta.state != FileState::Complete {
                return None;
            }
            let min_live = meta
                .blocks
                .iter()
                .map(|b| match self.blocks.stripe(*b) {
                    Some(s) => s.live(),
                    None => self.blocks.block(*b).live_replicas(),
                })
                .min()
                .unwrap_or(0);
            Some((f, min_live, target))
        })
    }

    /// Deprecated name of [`TieredDfs::under_redundant_files`], kept so
    /// pre-EC callers keep compiling.
    #[deprecated(note = "renamed to `under_redundant_files` (EC-aware)")]
    pub fn under_replicated_files(&self) -> impl Iterator<Item = (FileId, usize, usize)> + '_ {
        self.under_redundant_files()
    }

    /// True while some committed file is under-redundant.
    pub fn has_under_redundant(&self) -> bool {
        self.under_redundant_files().next().is_some()
    }

    /// Deprecated name of [`TieredDfs::has_under_redundant`].
    #[deprecated(note = "renamed to `has_under_redundant` (EC-aware)")]
    pub fn has_under_replicated(&self) -> bool {
        self.has_under_redundant()
    }

    /// Outstanding repair debt: the bytes the repair pipeline still has to
    /// write to bring every committed file back to full redundancy. For a
    /// replicated block each missing replica owes the whole block; for a
    /// striped block each dead shard owes one shard. Zero exactly when the
    /// degraded set is quiet, so a quiesced run reports no debt.
    pub fn repair_debt_bytes(&self) -> ByteSize {
        let target = self.config.replication as usize;
        let mut debt = ByteSize::ZERO;
        for f in self.blocks.degraded_files() {
            let Some(meta) = self.files.get(f) else {
                continue;
            };
            if meta.state != FileState::Complete {
                continue;
            }
            for b in &meta.blocks {
                match self.blocks.stripe(*b) {
                    Some(s) => {
                        let missing = s.total().saturating_sub(s.live()) as u64;
                        debt += s.shard_size * missing;
                    }
                    None => {
                        let block = self.blocks.block(*b);
                        let missing = target.saturating_sub(block.live_replicas()) as u64;
                        debt += block.size * missing;
                    }
                }
            }
        }
        debt
    }

    /// True while `node` is up.
    pub fn node_is_alive(&self, node: NodeId) -> bool {
        self.nodes.is_alive(node)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The file at `path`, if it is a file.
    pub fn file_id(&self, path: &str) -> Result<FileId> {
        match self.ns.lookup(path)? {
            Entry::File(id) => Ok(id),
            Entry::Dir => Err(OctoError::InvalidArgument(format!(
                "{path:?} is a directory"
            ))),
        }
    }

    /// Metadata of a live file.
    pub fn file_meta(&self, file: FileId) -> Option<&FileMeta> {
        self.files.get(file)
    }

    /// Access statistics of a live, committed file.
    pub fn file_stats(&self, file: FileId) -> Option<&AccessStats> {
        self.stats.get(file)
    }

    /// Block metadata.
    pub fn block_info(&self, block: BlockId) -> &BlockInfo {
        self.blocks.block(block)
    }

    /// Files with at least one block replica on `tier`, ascending by id.
    /// Borrows the block manager's per-tier resident set — no allocation.
    pub fn files_on_tier(&self, tier: StorageTier) -> impl Iterator<Item = FileId> + '_ {
        self.blocks.files_on_tier(tier)
    }

    /// Committed files with at least one block replica on `tier`, least
    /// recently used first (ties ascending by id). An index range-walk:
    /// each step is O(1) amortized, no sorting, no allocation.
    pub fn tier_recency_iter(
        &self,
        tier: StorageTier,
    ) -> impl Iterator<Item = (SimTime, FileId)> + '_ {
        self.recency.tier_iter(tier)
    }

    /// Like [`TieredDfs::tier_recency_iter`], resuming strictly after
    /// `after` (an entry a previous walk returned): an O(log n) seek into
    /// the index instead of a re-walk of the consumed prefix.
    pub fn tier_recency_iter_after(
        &self,
        tier: StorageTier,
        after: Option<(SimTime, FileId)>,
    ) -> impl Iterator<Item = (SimTime, FileId)> + '_ {
        self.recency.tier_iter_after(tier, after)
    }

    /// All committed files, most recently used first (ties ascending by
    /// id) — the MRU ordering the upgrade policies walk.
    pub fn mru_recency_iter(&self) -> impl Iterator<Item = (SimTime, FileId)> + '_ {
        self.recency.mru_iter()
    }

    /// The incrementally-maintained recency index (diagnostics/tests).
    pub fn recency(&self) -> &RecencyIndex {
        &self.recency
    }

    // ------------------------------------------------------------------
    // Shard-scoped views (parallel epoch engine)
    //
    // Each iterator below is one shard's leg of the corresponding global
    // merged iterator: merging all legs in shard order with the
    // order-preserving k-way merges reproduces the global order exactly,
    // which is what lets an epoch scan the shards concurrently and commit
    // serially with byte-identical results (see [`crate::epoch`]).
    // ------------------------------------------------------------------

    /// The number of shards the per-file bookkeeping is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.blocks.shard_count()
    }

    /// One shard's slice of the per-tier LRU ordering, `(last_used, file)`
    /// ascending — the shard leg of [`TieredDfs::tier_recency_iter`].
    pub fn shard_tier_recency_iter(
        &self,
        shard: usize,
        tier: StorageTier,
    ) -> impl Iterator<Item = (SimTime, FileId)> + '_ {
        self.recency.shard_tier_iter(shard, tier)
    }

    /// Like [`TieredDfs::shard_tier_recency_iter`], resuming strictly
    /// after `after` — the shard leg of
    /// [`TieredDfs::tier_recency_iter_after`].
    pub fn shard_tier_recency_iter_after(
        &self,
        shard: usize,
        tier: StorageTier,
        after: Option<(SimTime, FileId)>,
    ) -> impl Iterator<Item = (SimTime, FileId)> + '_ {
        self.recency.shard_tier_iter_after(shard, tier, after)
    }

    /// One shard's files with a replica on `tier`, ascending by id — the
    /// shard leg of [`TieredDfs::files_on_tier`].
    pub fn shard_files_on_tier(
        &self,
        shard: usize,
        tier: StorageTier,
    ) -> impl Iterator<Item = FileId> + '_ {
        self.blocks.shard_files_on_tier(shard, tier)
    }

    /// One shard's slice of the degraded map as `(file, deficient
    /// blocks)`, ascending by id.
    pub fn shard_degraded_files(&self, shard: usize) -> impl Iterator<Item = (FileId, u32)> + '_ {
        self.blocks.shard_degraded_files(shard)
    }

    /// One shard's committed under-redundant files, ascending by id — the
    /// shard leg of the candidate list
    /// [`TieredDfs::under_redundant_files`] yields, with the same
    /// committed-state filter applied.
    pub fn shard_under_redundant_files(&self, shard: usize) -> impl Iterator<Item = FileId> + '_ {
        self.blocks
            .shard_degraded_files(shard)
            .filter_map(|(f, _)| {
                let meta = self.files.get(f)?;
                (meta.state == FileState::Complete).then_some(f)
            })
    }

    /// Deprecated name of [`TieredDfs::shard_under_redundant_files`].
    #[deprecated(note = "renamed to `shard_under_redundant_files` (EC-aware)")]
    pub fn shard_under_replicated_files(&self, shard: usize) -> impl Iterator<Item = FileId> + '_ {
        self.shard_under_redundant_files(shard)
    }

    /// Bytes currently scheduled to move off or be dropped from `tier`.
    /// Maintained incrementally at transfer plan/complete/cancel time: O(1).
    pub fn pending_outgoing(&self, tier: StorageTier) -> ByteSize {
        self.transfers.pending_outgoing(tier)
    }

    /// Bytes currently reserved to land on `tier` by in-flight transfers.
    /// Maintained incrementally at transfer plan/complete/cancel time: O(1).
    pub fn pending_incoming(&self, tier: StorageTier) -> ByteSize {
        self.transfers.pending_incoming(tier)
    }

    /// True if `file` has at least one block replica on `tier`.
    pub fn file_on_tier(&self, file: FileId, tier: StorageTier) -> bool {
        self.blocks.file_on_tier(file, tier)
    }

    /// True if *every* block of `file` has a replica on `tier` (the
    /// all-or-nothing property the metrics care about).
    pub fn file_fully_on_tier(&self, file: FileId, tier: StorageTier) -> bool {
        let Some(meta) = self.files.get(file) else {
            return false;
        };
        !meta.blocks.is_empty()
            && meta
                .blocks
                .iter()
                .all(|b| self.blocks.block(*b).replica_on_tier(tier).is_some())
    }

    /// Cluster-wide committed/capacity utilization of a tier.
    pub fn tier_utilization(&self, tier: StorageTier) -> f64 {
        self.nodes.tier_utilization(tier)
    }

    /// Cluster-wide `(committed, capacity)` bytes of a tier.
    pub fn tier_usage(&self, tier: StorageTier) -> (ByteSize, ByteSize) {
        self.nodes.tier_usage(tier)
    }

    /// The node manager (device-level introspection).
    pub fn nodes(&self) -> &NodeManager {
        &self.nodes
    }

    /// The block manager (shard-level introspection for diagnostics and
    /// the property-test oracles).
    pub fn blocks(&self) -> &BlockManager {
        &self.blocks
    }

    /// Registers an I/O stream starting against a device (load balancing
    /// input).
    pub fn io_started(&mut self, node: NodeId, tier: StorageTier) {
        self.nodes.io_started(node, tier);
    }

    /// Registers an I/O stream finishing.
    pub fn io_finished(&mut self, node: NodeId, tier: StorageTier) {
        self.nodes.io_finished(node, tier);
    }

    /// Cumulative replica-movement statistics.
    pub fn movement_stats(&self) -> &MovementStats {
        self.transfers.stats()
    }

    /// An in-flight transfer.
    pub fn transfer(&self, id: TransferId) -> Option<&Transfer> {
        self.transfers.get(id)
    }

    /// Number of transfers in flight.
    pub fn transfers_in_flight(&self) -> usize {
        self.transfers.in_flight()
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.ns.file_count()
    }

    /// Number of committed live files. O(1): the file table maintains a
    /// counter alongside its committed-file rank index.
    pub fn committed_file_count(&self) -> usize {
        self.files.committed_len()
    }

    /// The `rank`-th committed live file in ascending id order, for
    /// `rank < committed_file_count()`. O(log files): a rank-select
    /// against the file table's Fenwick index, returning exactly what
    /// indexing a `Vec` of all committed files at `rank` would — the ML
    /// policies' training-sample ticks draw uniform ranks here instead of
    /// materializing that `Vec` every epoch.
    pub fn nth_committed_file(&self, rank: usize) -> Option<FileId> {
        self.files.nth_committed(rank)
    }

    /// Live files in id order.
    pub fn iter_files(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.iter()
    }

    /// Files with at least one block whose data is gone: no replica at all
    /// *and* no stripe retaining at least `k` shards (dead replicas and
    /// shards count as recoverable — their nodes may come back), ascending
    /// by id. An EC file that lost up to `m` shards per stripe is degraded
    /// but reconstructable, so it appears in
    /// [`TieredDfs::under_redundant_files`] — never here. Walks the
    /// incrementally-maintained degraded set — every lost block is
    /// deficient — instead of scanning the namespace.
    pub fn lost_files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.blocks.degraded_files().filter(move |f| {
            self.files
                .get(*f)
                .is_some_and(|m| m.blocks.iter().any(|b| self.blocks.block_is_lost(*b)))
        })
    }

    /// Replication monitor report: blocks whose *live* replica count
    /// deviates from the configured factor (only meaningful for committed
    /// files) — replicas on crashed nodes do not count, so the per-block
    /// view agrees with [`TieredDfs::under_redundant_files`]. Lazy: the
    /// monitor tick streams the deviations without materializing a fresh
    /// `Vec` per invocation.
    pub fn replication_report(&self) -> impl Iterator<Item = (BlockId, usize, usize)> + '_ {
        let target = self.config.replication as usize;
        self.files
            .iter()
            .filter(|meta| meta.state == FileState::Complete)
            .flat_map(move |meta| {
                meta.blocks
                    .iter()
                    .map(move |&b| (b, self.blocks.block(b).live_replicas(), target))
            })
            .filter(|&(_, n, target)| n != target)
    }

    /// Approximate bytes of per-file statistics bookkeeping (§7.7).
    pub fn stats_memory_bytes(&self) -> usize {
        self.stats.approx_memory_bytes()
    }
}
