//! The Block Manager: block → replica locations (Figure 3).
//!
//! Besides the per-block replica lists, the manager maintains an inverted
//! index `tier → files with at least one block replica on that tier`, which
//! is what downgrade policies enumerate when a tier fills up. Replicas that
//! are the *source* of an in-flight move are flagged `moving`: they remain
//! readable but cannot be selected for another transfer. Replicas hosted by
//! a crashed node are flagged `dead`: the bytes survive on disk but are
//! unreadable until the node recovers.
//!
//! The manager also tracks under-replication incrementally for the
//! Replication Monitor: every replica change refreshes the owning block's
//! deficiency (`live replicas < target`), and the per-shard `degraded`
//! maps hold the files with at least one deficient block — so "what needs
//! repair?" is a set walk, not a namespace scan.
//!
//! All per-file indexes are partitioned into [`SHARD_COUNT`] shards keyed
//! by [`shard_of`]`(file)` (see [`crate::shard`]): the per-tier inverted
//! index and the degraded map live per shard and are k-way merged on
//! iteration (same global order as the old single trees, bit for bit),
//! while per-file replica counts are dense per-shard arrays — an O(1)
//! lookup with no hashing. Aggregates that must answer in O(1)
//! (`fully_replicated`) are maintained globally at update time.

use crate::ec::{ShardLoc, Stripe, StripeManager};
use crate::shard::{shard_of, shard_slot, MergeAsc, SHARD_COUNT};
use octo_common::{BlockId, ByteSize, FileId, NodeId, OctoError, PerTier, Result, StorageTier};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One stored copy of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Replica {
    /// Node hosting the copy.
    pub node: NodeId,
    /// Tier of the device holding the copy.
    pub tier: StorageTier,
    /// True while this copy is the source of an in-flight transfer.
    pub moving: bool,
    /// True while the hosting node is down: the copy is unreadable and does
    /// not count toward the live replication factor.
    pub dead: bool,
}

/// Metadata of a single block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockInfo {
    /// This block's id.
    pub id: BlockId,
    /// Owning file.
    pub file: FileId,
    /// Position within the file (0-based).
    pub index: u32,
    /// Actual bytes in this block (the last block of a file may be short).
    pub size: ByteSize,
    replicas: Vec<Replica>,
    /// True while `live_replicas() < target` (maintained by the manager).
    deficient: bool,
}

impl BlockInfo {
    /// All replicas of this block, dead ones included.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The replica on `(node, tier)`, if present.
    pub fn replica_at(&self, node: NodeId, tier: StorageTier) -> Option<&Replica> {
        self.replicas
            .iter()
            .find(|r| r.node == node && r.tier == tier)
    }

    /// The first live, non-moving replica on `tier`, if any.
    pub fn replica_on_tier(&self, tier: StorageTier) -> Option<&Replica> {
        self.replicas
            .iter()
            .find(|r| r.tier == tier && !r.moving && !r.dead)
    }

    /// Number of live (readable, possibly moving) replicas.
    pub fn live_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| !r.dead).count()
    }

    /// True when the block has no readable copy right now (it may still be
    /// recoverable if a dead replica's node comes back).
    pub fn is_unavailable(&self) -> bool {
        self.live_replicas() == 0
    }

    /// Nodes already holding a copy, dead ones included (placement must
    /// avoid them all: a recovering node would otherwise end up with two
    /// copies of the same block).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.replicas.iter().map(|r| r.node)
    }
}

/// One shard's slice of the per-file indexes: all bookkeeping for file
/// `f` lives in shard `shard_of(f)` and nowhere else.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct FileIndexShard {
    /// `tier -> files (of this shard) with >= 1 block replica on it`
    /// (ascending by id). Dead replicas count: the bytes still occupy the
    /// device.
    files_on_tier: PerTier<BTreeSet<FileId>>,
    /// Per-file per-tier replica counts, dense by [`shard_slot`]. Absent
    /// slots and all-zero rows mean "no replicas anywhere".
    tier_counts: Vec<PerTier<u32>>,
    /// `file -> number of blocks with live replicas < target`. Keys are
    /// the under-replicated files the Replication Monitor walks.
    degraded: BTreeMap<FileId, u32>,
}

/// The cluster-wide block catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockManager {
    /// Dense block arena: slot `id` holds block `id`, deletions leave a
    /// hole. Ids are never reused.
    blocks: Vec<Option<BlockInfo>>,
    /// Number of live blocks (maintained, not scanned).
    live_blocks: usize,
    /// Per-file indexes, partitioned by `shard_of(file)`.
    shards: Vec<FileIndexShard>,
    /// Number of files with at least one deficient block, across all
    /// shards — the O(1) answer behind `fully_replicated`.
    degraded_total: usize,
    /// Live replicas per block must reach this target; 0 disables tracking.
    target: u32,
    /// Tiers of replicas a fault destroyed, per still-deficient block:
    /// repair prefers re-creating the copy on the tier it was lost from.
    /// Entries are dropped once the block is back at full replication.
    lost_tiers: HashMap<BlockId, Vec<StorageTier>>,
    /// Erasure-coding stripe metadata for blocks downgraded into an
    /// EC-configured tier. A striped block's deficiency is stripe-based
    /// (`live shards < k + m`) instead of replica-based, but feeds the
    /// same per-shard degraded maps — replication and reconstruction
    /// repair share one candidate walk.
    stripes: StripeManager,
}

impl Default for BlockManager {
    fn default() -> Self {
        BlockManager {
            blocks: Vec::new(),
            live_blocks: 0,
            shards: (0..SHARD_COUNT)
                .map(|_| FileIndexShard::default())
                .collect(),
            degraded_total: 0,
            target: 0,
            lost_tiers: HashMap::new(),
            stripes: StripeManager::new(),
        }
    }
}

impl BlockManager {
    /// An empty catalog with under-replication tracking disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty catalog flagging blocks with fewer than `target` live
    /// replicas as deficient.
    pub fn with_target(target: u32) -> Self {
        BlockManager {
            target,
            ..Self::default()
        }
    }

    /// Registers a new block (initially replica-less) and returns its id.
    pub fn create_block(&mut self, file: FileId, index: u32, size: ByteSize) -> BlockId {
        let id = BlockId(self.blocks.len() as u64);
        self.blocks.push(Some(BlockInfo {
            id,
            file,
            index,
            size,
            replicas: Vec::new(),
            deficient: false,
        }));
        self.live_blocks += 1;
        self.refresh_deficiency(id);
        id
    }

    /// Metadata of a live block.
    pub fn block(&self, id: BlockId) -> &BlockInfo {
        self.blocks[id.index()]
            .as_ref()
            .expect("block id refers to a deleted block")
    }

    fn block_mut(&mut self, id: BlockId) -> &mut BlockInfo {
        self.blocks[id.index()]
            .as_mut()
            .expect("block id refers to a deleted block")
    }

    /// Counts one more deficient block against `file` in its shard's
    /// degraded map (and the global file count on a 0 -> 1 transition).
    fn degrade_file(&mut self, file: FileId) {
        let n = self.shards[shard_of(file)]
            .degraded
            .entry(file)
            .or_insert(0);
        if *n == 0 {
            self.degraded_total += 1;
        }
        *n += 1;
    }

    /// Removes one deficient-block count from `file`, dropping it from the
    /// degraded map (and the global file count) at zero.
    fn undegrade_file(&mut self, file: FileId) {
        let shard = &mut self.shards[shard_of(file)];
        let n = shard
            .degraded
            .get_mut(&file)
            .expect("deficient block tracked");
        *n -= 1;
        if *n == 0 {
            shard.degraded.remove(&file);
            self.degraded_total -= 1;
        }
    }

    /// Re-evaluates one block's deficiency after a replica or shard change
    /// and keeps the per-file degraded index in sync. Striped blocks are
    /// deficient while any of their `k + m` shards is not live; everything
    /// else uses the live-replica target. O(replicas + shards) per call.
    fn refresh_deficiency(&mut self, block: BlockId) {
        if self.target == 0 {
            return;
        }
        let (file, was, now) = {
            let b = self.block(block);
            let now = match self.stripes.get(block) {
                Some(s) => !s.is_fully_redundant(),
                None => b.live_replicas() < self.target as usize,
            };
            (b.file, b.deficient, now)
        };
        if was == now {
            return;
        }
        self.block_mut(block).deficient = now;
        if now {
            self.degrade_file(file);
        } else {
            self.undegrade_file(file);
            // Fully replicated again: the loss record served its purpose.
            self.lost_tiers.remove(&block);
        }
    }

    /// Drops a deleted block's contribution to the degraded index.
    fn forget_deficiency(&mut self, file: FileId, was_deficient: bool) {
        if was_deficient {
            self.undegrade_file(file);
        }
    }

    fn bump_tier_count(&mut self, file: FileId, tier: StorageTier, delta: i32) {
        let shard = &mut self.shards[shard_of(file)];
        let slot = shard_slot(file);
        if slot >= shard.tier_counts.len() {
            shard.tier_counts.resize_with(slot + 1, PerTier::default);
        }
        let c = shard.tier_counts[slot].get_mut(tier);
        if delta > 0 {
            *c += delta as u32;
            if *c == delta as u32 {
                shard.files_on_tier.get_mut(tier).insert(file);
            }
        } else {
            debug_assert!(*c >= (-delta) as u32, "tier count underflow");
            *c = c.saturating_sub((-delta) as u32);
            if *c == 0 {
                shard.files_on_tier.get_mut(tier).remove(&file);
            }
        }
    }

    /// Adds a replica of `block` on `(node, tier)`.
    ///
    /// Fails if that exact device already holds a copy. Distinct *nodes* for
    /// fault tolerance are a placement concern, not enforced here: an HDFS
    /// cache copy deliberately lands on the node that already stores the
    /// disk replica (Figure 1a).
    pub fn add_replica(&mut self, block: BlockId, node: NodeId, tier: StorageTier) -> Result<()> {
        let file = {
            let b = self.block_mut(block);
            if b.replicas.iter().any(|r| r.node == node && r.tier == tier) {
                return Err(OctoError::InvalidState(format!(
                    "{node}/{tier} already holds a replica of {block}"
                )));
            }
            b.replicas.push(Replica {
                node,
                tier,
                moving: false,
                dead: false,
            });
            b.file
        };
        self.bump_tier_count(file, tier, 1);
        self.refresh_deficiency(block);
        Ok(())
    }

    /// Removes the replica of `block` at `(node, tier)`.
    pub fn remove_replica(
        &mut self,
        block: BlockId,
        node: NodeId,
        tier: StorageTier,
    ) -> Result<()> {
        let file = {
            let b = self.block_mut(block);
            let before = b.replicas.len();
            b.replicas.retain(|r| !(r.node == node && r.tier == tier));
            if b.replicas.len() == before {
                return Err(OctoError::NotFound(format!(
                    "no replica of {block} at {node}/{tier}"
                )));
            }
            b.file
        };
        self.bump_tier_count(file, tier, -1);
        self.refresh_deficiency(block);
        Ok(())
    }

    /// Relocates the replica at `(from_node, from_tier)` to
    /// `(to_node, to_tier)` and clears its moving flag (transfer landed).
    pub fn relocate_replica(
        &mut self,
        block: BlockId,
        from: (NodeId, StorageTier),
        to: (NodeId, StorageTier),
    ) -> Result<()> {
        let file = {
            let b = self.block_mut(block);
            // The destination node must not already hold a different copy.
            if to.0 != from.0 && b.replicas.iter().any(|r| r.node == to.0) {
                return Err(OctoError::InvalidState(format!(
                    "{} already holds a replica of {block}",
                    to.0
                )));
            }
            let r = b
                .replicas
                .iter_mut()
                .find(|r| r.node == from.0 && r.tier == from.1)
                .ok_or_else(|| {
                    OctoError::NotFound(format!("no replica of {block} at {}/{}", from.0, from.1))
                })?;
            r.node = to.0;
            r.tier = to.1;
            r.moving = false;
            b.file
        };
        self.bump_tier_count(file, from.1, -1);
        self.bump_tier_count(file, to.1, 1);
        Ok(())
    }

    /// Flags or clears the moving state of a replica.
    pub fn set_moving(
        &mut self,
        block: BlockId,
        node: NodeId,
        tier: StorageTier,
        moving: bool,
    ) -> Result<()> {
        let b = self.block_mut(block);
        let r = b
            .replicas
            .iter_mut()
            .find(|r| r.node == node && r.tier == tier)
            .ok_or_else(|| {
                OctoError::NotFound(format!("no replica of {block} at {node}/{tier}"))
            })?;
        r.moving = moving;
        Ok(())
    }

    /// Flags or clears the dead state of the replica at `(node, tier)`
    /// (node crashed / recovered). Space accounting is untouched: the bytes
    /// still occupy the device.
    pub fn set_dead(
        &mut self,
        block: BlockId,
        node: NodeId,
        tier: StorageTier,
        dead: bool,
    ) -> Result<()> {
        let b = self.block_mut(block);
        let r = b
            .replicas
            .iter_mut()
            .find(|r| r.node == node && r.tier == tier)
            .ok_or_else(|| {
                OctoError::NotFound(format!("no replica of {block} at {node}/{tier}"))
            })?;
        r.dead = dead;
        self.refresh_deficiency(block);
        Ok(())
    }

    /// Records that a fault destroyed a replica of `block` on `tier`, so
    /// repair can prefer re-creating it there. Only deficient blocks are
    /// recorded: losing a *surplus* replica (repair landed, then the dead
    /// node came back) needs no repair, and an entry for it would never be
    /// cleaned up by the deficient→healthy transition.
    pub fn note_lost_tier(&mut self, block: BlockId, tier: StorageTier) {
        if self.stripes.get(block).is_some() {
            // Striped blocks repair by rebuilding shards toward the
            // stripe's home tier, not by re-creating replicas.
            return;
        }
        if self.target > 0 && (self.block(block).live_replicas() as u32) < self.target {
            self.lost_tiers.entry(block).or_default().push(tier);
        }
    }

    /// Tiers this block lost replicas from (empty once fully replicated).
    pub fn lost_tiers(&self, block: BlockId) -> &[StorageTier] {
        self.lost_tiers.get(&block).map_or(&[], |v| v.as_slice())
    }

    // ------------------------------------------------------------------
    // Erasure-coding stripes
    // ------------------------------------------------------------------

    /// The stripe protecting `block`, if it was striped into an EC tier.
    pub fn stripe(&self, block: BlockId) -> Option<&Stripe> {
        self.stripes.get(block)
    }

    /// The stripe catalog (diagnostics, tests, repair statistics).
    pub fn stripes(&self) -> &StripeManager {
        &self.stripes
    }

    /// Creates the (initially shard-less) stripe for `block` if absent —
    /// the first landing shard write of a striping downgrade calls this.
    pub fn ensure_stripe(
        &mut self,
        block: BlockId,
        home: StorageTier,
        k: u8,
        m: u8,
        shard_size: ByteSize,
    ) {
        if self.stripes.get(block).is_none() {
            let file = self.block(block).file;
            self.stripes.insert(Stripe {
                block,
                file,
                home,
                k,
                m,
                shard_size,
                shards: Vec::new(),
            });
            self.refresh_deficiency(block);
        }
    }

    /// Adds (or supersedes) shard `loc.index` of `block`'s stripe, keeping
    /// the shard list ascending by index. When an earlier shard with the
    /// same index exists — a rebuild landing while the dead original waits
    /// for its node to return — the old shard is replaced and handed back
    /// so the caller can free its space.
    pub fn add_shard(&mut self, block: BlockId, loc: ShardLoc) -> Result<Option<ShardLoc>> {
        let (file, replaced) = {
            let s = self
                .stripes
                .get_mut(block)
                .ok_or_else(|| OctoError::NotFound(format!("{block} has no stripe")))?;
            if loc.index as usize >= s.total() {
                return Err(OctoError::InvalidArgument(format!(
                    "shard index {} out of range for EC({},{})",
                    loc.index, s.k, s.m
                )));
            }
            if s.shards
                .iter()
                .any(|sh| sh.node == loc.node && sh.index != loc.index)
            {
                return Err(OctoError::InvalidState(format!(
                    "{} already holds a shard of {block}",
                    loc.node
                )));
            }
            let file = s.file;
            let replaced = s
                .shards
                .iter()
                .position(|sh| sh.index == loc.index)
                .map(|p| s.shards.remove(p));
            let at = s
                .shards
                .iter()
                .position(|sh| sh.index > loc.index)
                .unwrap_or(s.shards.len());
            s.shards.insert(at, loc);
            (file, replaced)
        };
        if let Some(old) = replaced {
            self.bump_tier_count(file, old.tier, -1);
        }
        self.bump_tier_count(file, loc.tier, 1);
        self.refresh_deficiency(block);
        Ok(replaced)
    }

    /// Permanently removes the shard at `(node, index)` (device loss, or
    /// dropping a superseded copy on node recovery), returning it so the
    /// caller frees its space.
    pub fn remove_shard(&mut self, block: BlockId, node: NodeId, index: u8) -> Result<ShardLoc> {
        let (file, loc) = {
            let s = self
                .stripes
                .get_mut(block)
                .ok_or_else(|| OctoError::NotFound(format!("{block} has no stripe")))?;
            let pos = s
                .shards
                .iter()
                .position(|sh| sh.node == node && sh.index == index)
                .ok_or_else(|| {
                    OctoError::NotFound(format!("no shard {index} of {block} on {node}"))
                })?;
            (s.file, s.shards.remove(pos))
        };
        self.bump_tier_count(file, loc.tier, -1);
        self.refresh_deficiency(block);
        Ok(loc)
    }

    /// Flags or clears the dead state of the shard at `(node, index)`
    /// (node crashed / recovered). Space accounting is untouched: the
    /// bytes still occupy the device.
    pub fn set_shard_dead(
        &mut self,
        block: BlockId,
        node: NodeId,
        index: u8,
        dead: bool,
    ) -> Result<()> {
        let s = self
            .stripes
            .get_mut(block)
            .ok_or_else(|| OctoError::NotFound(format!("{block} has no stripe")))?;
        let sh = s
            .shards
            .iter_mut()
            .find(|sh| sh.node == node && sh.index == index)
            .ok_or_else(|| OctoError::NotFound(format!("no shard {index} of {block} on {node}")))?;
        sh.dead = dead;
        self.refresh_deficiency(block);
        Ok(())
    }

    /// Removes `block`'s whole stripe (de-striping on upgrade, or file
    /// deletion), returning it so the caller frees the shard space.
    /// Deficiency tracking reverts to the live-replica target.
    pub fn take_stripe(&mut self, block: BlockId) -> Option<Stripe> {
        let s = self.stripes.remove(block)?;
        for sh in &s.shards {
            self.bump_tier_count(s.file, sh.tier, -1);
        }
        self.refresh_deficiency(block);
        Some(s)
    }

    /// Every `(block, index, tier, dead)` stripe shard hosted by `node`,
    /// ascending by block id then index — the fault path's shard analog of
    /// [`BlockManager::replicas_on_node`].
    pub fn shards_on_node(&self, node: NodeId) -> Vec<(BlockId, u8, StorageTier, bool)> {
        self.stripes
            .iter()
            .flat_map(|s| {
                s.shards
                    .iter()
                    .filter(|sh| sh.node == node)
                    .map(|sh| (s.block, sh.index, sh.tier, sh.dead))
            })
            .collect()
    }

    /// True when the data of `block` is gone for good: no replica exists
    /// and no stripe retains at least `k` shards (dead ones included — a
    /// recovering node can still bring those back).
    pub fn block_is_lost(&self, block: BlockId) -> bool {
        self.block(block).replicas().is_empty()
            && self.stripes.get(block).is_none_or(|s| s.is_lost())
    }

    /// Cumulative count of stripe shard rebuilds completed by repair.
    pub fn stripes_rebuilt(&self) -> u64 {
        self.stripes.stripes_rebuilt()
    }

    /// Records one completed stripe shard rebuild.
    pub fn note_stripe_rebuilt(&mut self) {
        self.stripes.note_rebuilt();
    }

    /// Every `(block, tier, moving, dead)` replica hosted by `node`, in
    /// block-id order. A full catalog scan — fault events are rare enough
    /// that an extra per-node index is not worth its upkeep.
    pub fn replicas_on_node(&self, node: NodeId) -> Vec<(BlockId, StorageTier, bool, bool)> {
        self.blocks
            .iter()
            .flatten()
            .flat_map(|b| {
                b.replicas
                    .iter()
                    .filter(|r| r.node == node)
                    .map(|r| (b.id, r.tier, r.moving, r.dead))
            })
            .collect()
    }

    /// Files with at least one block whose live replica count is below the
    /// target, ascending by id. Incrementally maintained: no scan — a
    /// k-way merge over the per-shard degraded maps.
    pub fn degraded_files(&self) -> impl Iterator<Item = FileId> + '_ {
        MergeAsc::new(self.shards.iter().map(|s| s.degraded.keys().copied()))
    }

    /// True when no block anywhere is under-replicated. O(1): a globally
    /// maintained count over the per-shard degraded maps.
    pub fn fully_replicated(&self) -> bool {
        self.degraded_total == 0
    }

    /// Number of files with at least one under-replicated block. O(1).
    pub fn degraded_file_count(&self) -> usize {
        self.degraded_total
    }

    /// The configured live-replica target (0 = tracking disabled).
    pub fn replication_target(&self) -> u32 {
        self.target
    }

    /// Deletes a block entirely, returning the replicas whose space must be
    /// freed.
    pub fn delete_block(&mut self, block: BlockId) -> Vec<Replica> {
        let info = self.blocks[block.index()]
            .take()
            .expect("deleting a dead block");
        self.live_blocks -= 1;
        self.forget_deficiency(info.file, info.deficient);
        self.lost_tiers.remove(&block);
        // Deleting a still-striped block (callers normally `take_stripe`
        // first to free the shard space) must not leak index entries.
        if let Some(s) = self.stripes.remove(block) {
            for sh in &s.shards {
                self.bump_tier_count(s.file, sh.tier, -1);
            }
        }
        for r in &info.replicas {
            self.bump_tier_count(info.file, r.tier, -1);
        }
        // The dense per-shard count rows simply return to all-zero; no
        // per-file entry needs dropping.
        info.replicas
    }

    /// True if `file` has at least one block replica on `tier`. O(1): a
    /// dense per-shard array lookup, no tree or hash probe.
    pub fn file_on_tier(&self, file: FileId, tier: StorageTier) -> bool {
        self.file_tier_count(file, tier) > 0
    }

    /// Number of block replicas `file` has on `tier`. O(1).
    pub fn file_tier_count(&self, file: FileId, tier: StorageTier) -> u32 {
        self.shards[shard_of(file)]
            .tier_counts
            .get(shard_slot(file))
            .map_or(0, |c| *c.get(tier))
    }

    /// Files with at least one block replica on `tier`, ascending by id: a
    /// k-way merge over the per-shard inverted indexes.
    pub fn files_on_tier(&self, tier: StorageTier) -> impl Iterator<Item = FileId> + '_ {
        MergeAsc::new(
            self.shards
                .iter()
                .map(move |s| s.files_on_tier.get(tier).iter().copied()),
        )
    }

    /// The number of index shards (diagnostics and property tests).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's slice of the per-tier inverted index, ascending by id
    /// (property tests cross-check shard placement and per-shard order).
    pub fn shard_files_on_tier(
        &self,
        shard: usize,
        tier: StorageTier,
    ) -> impl Iterator<Item = FileId> + '_ {
        self.shards[shard].files_on_tier.get(tier).iter().copied()
    }

    /// One shard's slice of the degraded map as `(file, deficient blocks)`,
    /// ascending by id.
    pub fn shard_degraded_files(&self, shard: usize) -> impl Iterator<Item = (FileId, u32)> + '_ {
        self.shards[shard].degraded.iter().map(|(f, n)| (*f, *n))
    }

    /// Number of live blocks. O(1): a maintained counter.
    pub fn live_blocks(&self) -> usize {
        self.live_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEM: StorageTier = StorageTier::Memory;
    const SSD: StorageTier = StorageTier::Ssd;
    const HDD: StorageTier = StorageTier::Hdd;

    #[test]
    fn replica_lifecycle_updates_tier_index() {
        let mut bm = BlockManager::new();
        let f = FileId(0);
        let b = bm.create_block(f, 0, ByteSize::mb(128));
        bm.add_replica(b, NodeId(0), MEM).unwrap();
        bm.add_replica(b, NodeId(1), SSD).unwrap();
        assert!(bm.file_on_tier(f, MEM));
        assert!(bm.file_on_tier(f, SSD));
        assert!(!bm.file_on_tier(f, HDD));
        assert_eq!(bm.file_tier_count(f, MEM), 1);

        bm.remove_replica(b, NodeId(0), MEM).unwrap();
        assert!(!bm.file_on_tier(f, MEM));
        assert_eq!(bm.files_on_tier(SSD).collect::<Vec<_>>(), vec![f]);
    }

    #[test]
    fn duplicate_device_rejected_but_cache_colocation_allowed() {
        let mut bm = BlockManager::new();
        let b = bm.create_block(FileId(0), 0, ByteSize::mb(128));
        bm.add_replica(b, NodeId(0), HDD).unwrap();
        // A cache copy on the same node, different tier, is legal.
        bm.add_replica(b, NodeId(0), MEM).unwrap();
        // The same device twice is not.
        let err = bm.add_replica(b, NodeId(0), MEM).unwrap_err();
        assert_eq!(err.kind(), "invalid_state");
    }

    #[test]
    fn relocate_moves_between_tiers() {
        let mut bm = BlockManager::new();
        let f = FileId(3);
        let b = bm.create_block(f, 0, ByteSize::mb(64));
        bm.add_replica(b, NodeId(0), MEM).unwrap();
        bm.set_moving(b, NodeId(0), MEM, true).unwrap();
        assert!(
            bm.block(b).replica_on_tier(MEM).is_none(),
            "moving replicas hidden"
        );

        bm.relocate_replica(b, (NodeId(0), MEM), (NodeId(0), SSD))
            .unwrap();
        assert!(!bm.file_on_tier(f, MEM));
        assert!(bm.file_on_tier(f, SSD));
        let r = bm.block(b).replica_at(NodeId(0), SSD).unwrap();
        assert!(!r.moving, "landing clears the moving flag");
    }

    #[test]
    fn relocate_rejects_node_collision() {
        let mut bm = BlockManager::new();
        let b = bm.create_block(FileId(0), 0, ByteSize::mb(64));
        bm.add_replica(b, NodeId(0), MEM).unwrap();
        bm.add_replica(b, NodeId(1), HDD).unwrap();
        let err = bm
            .relocate_replica(b, (NodeId(0), MEM), (NodeId(1), SSD))
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_state");
    }

    #[test]
    fn multi_block_file_counts() {
        let mut bm = BlockManager::new();
        let f = FileId(9);
        let b0 = bm.create_block(f, 0, ByteSize::mb(128));
        let b1 = bm.create_block(f, 1, ByteSize::mb(40));
        bm.add_replica(b0, NodeId(0), MEM).unwrap();
        bm.add_replica(b1, NodeId(1), MEM).unwrap();
        assert_eq!(bm.file_tier_count(f, MEM), 2);
        bm.remove_replica(b0, NodeId(0), MEM).unwrap();
        // Still on the tier through the second block.
        assert!(bm.file_on_tier(f, MEM));
        bm.remove_replica(b1, NodeId(1), MEM).unwrap();
        assert!(!bm.file_on_tier(f, MEM));
    }

    #[test]
    fn delete_block_returns_replicas_to_free() {
        let mut bm = BlockManager::new();
        let f = FileId(1);
        let b = bm.create_block(f, 0, ByteSize::mb(128));
        bm.add_replica(b, NodeId(0), MEM).unwrap();
        bm.add_replica(b, NodeId(2), HDD).unwrap();
        let freed = bm.delete_block(b);
        assert_eq!(freed.len(), 2);
        assert!(!bm.file_on_tier(f, MEM));
        assert_eq!(bm.live_blocks(), 0);
    }

    #[test]
    fn dead_flags_hide_replicas_and_track_deficiency() {
        let mut bm = BlockManager::with_target(2);
        let f = FileId(0);
        let b = bm.create_block(f, 0, ByteSize::mb(128));
        assert_eq!(
            bm.degraded_files().collect::<Vec<_>>(),
            vec![f],
            "a replica-less block is deficient"
        );
        bm.add_replica(b, NodeId(0), MEM).unwrap();
        bm.add_replica(b, NodeId(1), HDD).unwrap();
        assert!(bm.fully_replicated());

        bm.set_dead(b, NodeId(1), HDD, true).unwrap();
        assert!(bm.block(b).replica_on_tier(HDD).is_none(), "dead is hidden");
        assert_eq!(bm.block(b).live_replicas(), 1);
        assert_eq!(bm.degraded_files().collect::<Vec<_>>(), vec![f]);
        assert!(bm.file_on_tier(f, HDD), "dead bytes still occupy the tier");

        bm.set_dead(b, NodeId(1), HDD, false).unwrap();
        assert!(bm.fully_replicated());
        assert!(bm.block(b).replica_on_tier(HDD).is_some());
    }

    #[test]
    fn replicas_on_node_scans_the_catalog() {
        let mut bm = BlockManager::with_target(2);
        let b0 = bm.create_block(FileId(0), 0, ByteSize::mb(1));
        let b1 = bm.create_block(FileId(1), 0, ByteSize::mb(1));
        bm.add_replica(b0, NodeId(0), MEM).unwrap();
        bm.add_replica(b0, NodeId(1), HDD).unwrap();
        bm.add_replica(b1, NodeId(1), SSD).unwrap();
        let on_1 = bm.replicas_on_node(NodeId(1));
        assert_eq!(on_1, vec![(b0, HDD, false, false), (b1, SSD, false, false)]);
        assert_eq!(bm.replicas_on_node(NodeId(2)), vec![]);
    }

    #[test]
    fn delete_block_clears_deficiency() {
        let mut bm = BlockManager::with_target(3);
        let f = FileId(4);
        let b = bm.create_block(f, 0, ByteSize::mb(1));
        bm.add_replica(b, NodeId(0), MEM).unwrap();
        assert!(!bm.fully_replicated());
        bm.delete_block(b);
        assert!(bm.fully_replicated(), "deleted blocks stop counting");
    }

    #[test]
    fn stripe_lifecycle_feeds_degraded_set_and_tier_index() {
        let mut bm = BlockManager::with_target(3);
        let f = FileId(0);
        let b = bm.create_block(f, 0, ByteSize::mb(128));
        bm.add_replica(b, NodeId(0), SSD).unwrap();
        assert!(!bm.fully_replicated(), "1 < 3 live replicas");

        // Striping: once the stripe exists, deficiency is shard-based.
        bm.ensure_stripe(b, HDD, 2, 1, ByteSize::mb(64));
        assert!(!bm.fully_replicated(), "no shards landed yet");
        for i in 0..3u8 {
            bm.add_shard(
                b,
                ShardLoc {
                    node: NodeId(i as u32 + 1),
                    tier: HDD,
                    index: i,
                    dead: false,
                },
            )
            .unwrap();
        }
        assert!(bm.fully_replicated(), "k+m live shards despite one replica");
        assert_eq!(bm.file_tier_count(f, HDD), 3);

        // Kill a shard, then lose it for good.
        bm.set_shard_dead(b, NodeId(1), 0, true).unwrap();
        assert!(!bm.fully_replicated());
        bm.remove_shard(b, NodeId(1), 0).unwrap();
        assert_eq!(bm.file_tier_count(f, HDD), 2);
        assert!(!bm.block_is_lost(b), "k shards remain");
        bm.remove_replica(b, NodeId(0), SSD).unwrap();
        assert!(!bm.block_is_lost(b), "still k shards, no replica needed");
        bm.remove_shard(b, NodeId(2), 1).unwrap();
        assert!(bm.block_is_lost(b), "fewer than k shards, no replica");

        // De-striping clears the tier index and reverts to replica
        // tracking (0 < 3 live replicas: deficient).
        let s = bm.take_stripe(b).unwrap();
        assert_eq!(s.shards.len(), 1);
        assert_eq!(bm.file_tier_count(f, HDD), 0);
        assert!(!bm.fully_replicated());
    }

    #[test]
    fn shard_rebuild_supersedes_and_scans_by_node() {
        let mut bm = BlockManager::with_target(1);
        let b = bm.create_block(FileId(0), 0, ByteSize::mb(64));
        bm.ensure_stripe(b, HDD, 2, 1, ByteSize::mb(32));
        for i in 0..3u8 {
            bm.add_shard(
                b,
                ShardLoc {
                    node: NodeId(i as u32),
                    tier: HDD,
                    index: i,
                    dead: false,
                },
            )
            .unwrap();
        }
        // Two shards of one stripe on the same node is a placement bug.
        let err = bm
            .add_shard(
                b,
                ShardLoc {
                    node: NodeId(0),
                    tier: HDD,
                    index: 1,
                    dead: false,
                },
            )
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_state");

        // A rebuild of index 1 on a fresh node supersedes the original.
        bm.set_shard_dead(b, NodeId(1), 1, true).unwrap();
        let replaced = bm
            .add_shard(
                b,
                ShardLoc {
                    node: NodeId(3),
                    tier: HDD,
                    index: 1,
                    dead: false,
                },
            )
            .unwrap()
            .expect("old shard handed back");
        assert_eq!((replaced.node, replaced.dead), (NodeId(1), true));
        assert!(bm.stripe(b).unwrap().is_fully_redundant());

        assert_eq!(bm.shards_on_node(NodeId(3)), vec![(b, 1, HDD, false)]);
        assert_eq!(bm.shards_on_node(NodeId(1)), vec![]);
    }

    #[test]
    fn files_on_tier_is_sorted() {
        let mut bm = BlockManager::new();
        for id in [5u64, 1, 3] {
            let b = bm.create_block(FileId(id), 0, ByteSize::mb(1));
            bm.add_replica(b, NodeId(0), HDD).unwrap();
        }
        let files: Vec<_> = bm.files_on_tier(HDD).collect();
        assert_eq!(files, vec![FileId(1), FileId(3), FileId(5)]);
    }
}
