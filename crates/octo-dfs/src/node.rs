//! Worker nodes and their storage devices (the Node Manager of Figure 3).
//!
//! Space accounting distinguishes *used* bytes (replicas materialized on the
//! device) from *reserved* bytes (in-flight transfers that will land soon).
//! Placement and the downgrade trigger both work on `used + reserved`, so an
//! already-scheduled transfer can never oversubscribe its destination.

use crate::config::DfsConfig;
use octo_common::{ByteSize, NodeId, OctoError, PerTier, Result, StorageTier};
use serde::{Deserialize, Serialize};

/// One storage device: a tier's medium on one node.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Device {
    capacity: ByteSize,
    used: ByteSize,
    reserved: ByteSize,
    /// Number of I/O streams the compute layer currently runs against this
    /// device (load-balancing input for placement).
    active_io: u32,
}

impl Device {
    fn new(capacity: ByteSize) -> Self {
        Device {
            capacity,
            ..Device::default()
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes held by materialized replicas.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Bytes promised to in-flight transfers.
    pub fn reserved(&self) -> ByteSize {
        self.reserved
    }

    /// `used + reserved` — the number that matters for admission decisions.
    pub fn committed(&self) -> ByteSize {
        self.used + self.reserved
    }

    /// Fraction of capacity committed, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.committed().fraction_of(self.capacity)
    }

    /// Bytes still available for new commitments.
    pub fn free(&self) -> ByteSize {
        self.capacity.saturating_sub(self.committed())
    }

    /// Current I/O stream count.
    pub fn active_io(&self) -> u32 {
        self.active_io
    }
}

/// All workers' devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeManager {
    nodes: Vec<PerTier<Device>>,
    /// Per-node liveness: dead nodes keep their space accounting (disk
    /// contents survive a crash) but accept no reservations and are
    /// skipped by placement.
    alive: Vec<bool>,
}

impl NodeManager {
    /// Builds the device inventory from the cluster config.
    pub fn new(config: &DfsConfig) -> Self {
        let nodes: Vec<PerTier<Device>> = (0..config.workers)
            .map(|_| PerTier::from_fn(|t| Device::new(*config.tier_capacity.get(t))))
            .collect();
        let alive = vec![true; nodes.len()];
        NodeManager { nodes, alive }
    }

    /// Number of worker nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no workers (never valid in practice).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Shared view of one device.
    pub fn device(&self, node: NodeId, tier: StorageTier) -> &Device {
        self.nodes[node.index()].get(tier)
    }

    fn device_mut(&mut self, node: NodeId, tier: StorageTier) -> &mut Device {
        self.nodes[node.index()].get_mut(tier)
    }

    /// True while `node` is up. Dead nodes hold their data (minus memory)
    /// but serve nothing.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Number of nodes currently up.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Marks a node down. Idempotence is the caller's problem: the DFS
    /// facade rejects double-failures before touching accounting.
    pub fn set_alive(&mut self, node: NodeId, alive: bool) {
        self.alive[node.index()] = alive;
    }

    /// Reserves `bytes` on a device ahead of an incoming transfer.
    pub fn reserve(&mut self, node: NodeId, tier: StorageTier, bytes: ByteSize) -> Result<()> {
        if !self.is_alive(node) {
            return Err(OctoError::InvalidState(format!("{node} is down")));
        }
        let d = self.device_mut(node, tier);
        if d.free() < bytes {
            return Err(OctoError::OutOfCapacity(format!(
                "{node}/{tier}: need {bytes}, free {}",
                d.free()
            )));
        }
        d.reserved += bytes;
        Ok(())
    }

    /// Converts a prior reservation into used bytes (the transfer landed).
    pub fn commit_reserved(&mut self, node: NodeId, tier: StorageTier, bytes: ByteSize) {
        let d = self.device_mut(node, tier);
        debug_assert!(d.reserved >= bytes, "committing more than reserved");
        d.reserved = d.reserved.saturating_sub(bytes);
        d.used += bytes;
        debug_assert!(d.used + d.reserved <= d.capacity, "device oversubscribed");
    }

    /// Releases a reservation without materializing it (transfer cancelled).
    pub fn release_reserved(&mut self, node: NodeId, tier: StorageTier, bytes: ByteSize) {
        let d = self.device_mut(node, tier);
        debug_assert!(d.reserved >= bytes, "releasing more than reserved");
        d.reserved = d.reserved.saturating_sub(bytes);
    }

    /// Frees used bytes (replica deleted or moved away).
    pub fn free_used(&mut self, node: NodeId, tier: StorageTier, bytes: ByteSize) {
        let d = self.device_mut(node, tier);
        debug_assert!(d.used >= bytes, "freeing more than used");
        d.used = d.used.saturating_sub(bytes);
    }

    /// Registers an I/O stream starting against a device.
    pub fn io_started(&mut self, node: NodeId, tier: StorageTier) {
        self.device_mut(node, tier).active_io += 1;
    }

    /// Registers an I/O stream finishing.
    pub fn io_finished(&mut self, node: NodeId, tier: StorageTier) {
        let d = self.device_mut(node, tier);
        debug_assert!(d.active_io > 0, "io_finished without io_started");
        d.active_io = d.active_io.saturating_sub(1);
    }

    /// Cluster-wide `(committed, capacity)` for a tier.
    pub fn tier_usage(&self, tier: StorageTier) -> (ByteSize, ByteSize) {
        let mut committed = ByteSize::ZERO;
        let mut capacity = ByteSize::ZERO;
        for n in &self.nodes {
            let d = n.get(tier);
            committed += d.committed();
            capacity += d.capacity();
        }
        (committed, capacity)
    }

    /// Cluster-wide utilization fraction of a tier.
    pub fn tier_utilization(&self, tier: StorageTier) -> f64 {
        let (committed, capacity) = self.tier_usage(tier);
        committed.fraction_of(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> NodeManager {
        NodeManager::new(&DfsConfig {
            workers: 3,
            ..DfsConfig::default()
        })
    }

    #[test]
    fn inventory_matches_config() {
        let m = mgr();
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.device(NodeId(0), StorageTier::Memory).capacity(),
            ByteSize::gb(4)
        );
        let (used, cap) = m.tier_usage(StorageTier::Memory);
        assert_eq!(used, ByteSize::ZERO);
        assert_eq!(cap, ByteSize::gb(12));
    }

    #[test]
    fn reserve_commit_free_lifecycle() {
        let mut m = mgr();
        let n = NodeId(1);
        let t = StorageTier::Memory;
        m.reserve(n, t, ByteSize::gb(1)).unwrap();
        assert_eq!(m.device(n, t).reserved(), ByteSize::gb(1));
        assert_eq!(m.device(n, t).used(), ByteSize::ZERO);
        assert_eq!(m.device(n, t).free(), ByteSize::gb(3));

        m.commit_reserved(n, t, ByteSize::gb(1));
        assert_eq!(m.device(n, t).reserved(), ByteSize::ZERO);
        assert_eq!(m.device(n, t).used(), ByteSize::gb(1));

        m.free_used(n, t, ByteSize::gb(1));
        assert_eq!(m.device(n, t).used(), ByteSize::ZERO);
    }

    #[test]
    fn reservation_respects_capacity() {
        let mut m = mgr();
        let n = NodeId(0);
        let t = StorageTier::Memory;
        m.reserve(n, t, ByteSize::gb(4)).unwrap();
        let err = m.reserve(n, t, ByteSize::mb(1)).unwrap_err();
        assert_eq!(err.kind(), "out_of_capacity");
    }

    #[test]
    fn release_reverts_reservation() {
        let mut m = mgr();
        let n = NodeId(2);
        let t = StorageTier::Ssd;
        m.reserve(n, t, ByteSize::gb(2)).unwrap();
        m.release_reserved(n, t, ByteSize::gb(2));
        assert_eq!(m.device(n, t).free(), ByteSize::gb(64));
    }

    #[test]
    fn io_counters() {
        let mut m = mgr();
        let n = NodeId(0);
        m.io_started(n, StorageTier::Hdd);
        m.io_started(n, StorageTier::Hdd);
        assert_eq!(m.device(n, StorageTier::Hdd).active_io(), 2);
        m.io_finished(n, StorageTier::Hdd);
        assert_eq!(m.device(n, StorageTier::Hdd).active_io(), 1);
    }

    #[test]
    fn dead_nodes_reject_reservations() {
        let mut m = mgr();
        assert_eq!(m.alive_count(), 3);
        m.set_alive(NodeId(1), false);
        assert!(!m.is_alive(NodeId(1)));
        assert_eq!(m.alive_count(), 2);
        let err = m
            .reserve(NodeId(1), StorageTier::Ssd, ByteSize::mb(1))
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_state");
        m.set_alive(NodeId(1), true);
        m.reserve(NodeId(1), StorageTier::Ssd, ByteSize::mb(1))
            .unwrap();
    }

    #[test]
    fn tier_utilization_aggregates() {
        let mut m = mgr();
        // Fill one node's memory completely: cluster-wide = 1/3.
        m.reserve(NodeId(0), StorageTier::Memory, ByteSize::gb(4))
            .unwrap();
        m.commit_reserved(NodeId(0), StorageTier::Memory, ByteSize::gb(4));
        let u = m.tier_utilization(StorageTier::Memory);
        assert!((u - 1.0 / 3.0).abs() < 1e-9, "utilization {u}");
    }
}
