//! Parallel epoch fan-out: a fixed-size worker pool over the shard space,
//! shard-local read views, and the per-shard result type the merge phase
//! consumes.
//!
//! The DFS core is partitioned into [`SHARD_COUNT`] shards whose ordered
//! indexes individually preserve the global iteration orders
//! ([`crate::shard`]). That makes an epoch's read-heavy work — policy
//! candidate evaluation, weight/stats decay at selection time, repair
//! candidate filtering — *embarrassingly parallel*: each shard can be
//! scanned by a different worker thread with nothing but `&TieredDfs`,
//! and the per-shard results are then merged **in shard order** with the
//! order-preserving [`MergeAsc`]/[`MergeDesc`] merges, so the merged
//! output is byte-identical at any thread count.
//!
//! The split/merge contract every parallel epoch path follows:
//!
//! 1. **Scan (parallel, read-only).** [`EpochPool::scan_shards`] runs one
//!    closure per shard over a [`ShardView`] and collects one
//!    [`ShardEpochPlan`] per shard, always returned in ascending shard
//!    order regardless of which worker finished first.
//! 2. **Merge + commit (serial, deterministic).** The caller k-way merges
//!    the per-shard plans back into the global order and applies mutations
//!    (`plan_downgrade`, `plan_repair`, …) one at a time. Because a file
//!    lives in exactly one shard and each shard's slice is already in the
//!    global key order, the merge reproduces the single-threaded iteration
//!    order bit for bit — thread scheduling can only change *when* a slice
//!    is produced, never *what* it contains or where it lands.
//!
//! Worked example — the downgrade split in `octo-policies` scans each
//! shard's LRU slice in parallel, then consumes the merged stream
//! serially:
//!
//! ```
//! use octo_dfs::{EpochPool, ShardEpochPlan, TieredDfs, DfsConfig};
//! use octo_dfs::shard::MergeAsc;
//! use octo_common::StorageTier;
//!
//! let dfs = TieredDfs::new(DfsConfig::default()).unwrap();
//! let pool = EpochPool::new(4);
//! // Scan: one worker per shard, read-only, shard-ordered results.
//! let plans: Vec<ShardEpochPlan<Vec<_>>> = pool.scan_shards(&dfs, |view| {
//!     view.tier_recency_iter(StorageTier::Memory).collect()
//! });
//! // Merge: per-shard slices are each (last_used, file)-ascending, so the
//! // k-way merge is exactly the global LRU order a serial walk produces.
//! let merged: Vec<_> =
//!     MergeAsc::new(plans.iter().map(|p| p.items.iter().copied())).collect();
//! assert_eq!(merged, dfs.tier_recency_iter(StorageTier::Memory).collect::<Vec<_>>());
//! ```
//!
//! [`SHARD_COUNT`]: crate::shard::SHARD_COUNT
//! [`MergeAsc`]: crate::shard::MergeAsc
//! [`MergeDesc`]: crate::shard::MergeDesc

use crate::dfs::TieredDfs;
use crate::shard::SHARD_COUNT;
use octo_common::{FileId, SimTime, StorageTier};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-size worker pool for epoch fan-outs.
///
/// The pool's *size* (worker-thread count) is fixed at construction; the
/// workers themselves are spawned inside a [`std::thread::scope`] per
/// fan-out so they may borrow the DFS directly — the same pattern the
/// scenario-matrix runner proved out. Spawn cost is tens of microseconds
/// per worker, noise against a multi-millisecond epoch; in exchange the
/// pool needs no `unsafe`, no channels, and no `'static` bounds.
///
/// A pool of one thread runs every scan inline on the calling thread, in
/// shard order — the serial path is the degenerate case, not a separate
/// code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochPool {
    threads: usize,
}

impl Default for EpochPool {
    fn default() -> Self {
        EpochPool::serial()
    }
}

impl EpochPool {
    /// A pool of `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        EpochPool {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: fan-outs run inline, in shard order.
    pub fn serial() -> Self {
        EpochPool { threads: 1 }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when fan-outs run inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Runs `scan` once per shard — read-only, possibly concurrently — and
    /// returns the per-shard results **in ascending shard order**,
    /// independent of thread interleaving.
    ///
    /// Workers pull shard indices from a shared counter, so an uneven
    /// shard (one holding most of a tier's residents) does not serialize
    /// the rest of the fan-out behind it.
    pub fn scan_shards<T, F>(&self, dfs: &TieredDfs, scan: F) -> Vec<ShardEpochPlan<T>>
    where
        T: Send,
        F: Fn(ShardView<'_>) -> T + Sync,
    {
        if self.is_serial() {
            return (0..SHARD_COUNT)
                .map(|shard| ShardEpochPlan {
                    shard,
                    items: scan(ShardView { dfs, shard }),
                })
                .collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..SHARD_COUNT).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(SHARD_COUNT) {
                scope.spawn(|| loop {
                    let shard = next.fetch_add(1, Ordering::Relaxed);
                    if shard >= SHARD_COUNT {
                        break;
                    }
                    let out = scan(ShardView { dfs, shard });
                    *slots[shard].lock().expect("scan slot lock") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(shard, slot)| ShardEpochPlan {
                shard,
                items: slot
                    .into_inner()
                    .expect("scan slot lock")
                    .expect("every shard scanned"),
            })
            .collect()
    }
}

/// A read-only view of one shard's slice of the DFS: the shard-scoped
/// iterators a scan worker consumes, plus the global per-file tables
/// (stats, metadata, movability) that are safely shared because the scan
/// phase takes no locks and performs no mutation.
#[derive(Clone, Copy)]
pub struct ShardView<'a> {
    dfs: &'a TieredDfs,
    shard: usize,
}

impl<'a> ShardView<'a> {
    /// The shard this view covers.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The whole DFS, for per-file lookups (`file_stats`, `file_meta`,
    /// `is_movable`, …) that are dense-arena reads rather than shard
    /// iterations.
    pub fn dfs(&self) -> &'a TieredDfs {
        self.dfs
    }

    /// This shard's slice of the per-tier LRU ordering, `(last_used,
    /// file)` ascending — one leg of the global
    /// [`TieredDfs::tier_recency_iter`] merge.
    pub fn tier_recency_iter(
        &self,
        tier: StorageTier,
    ) -> impl Iterator<Item = (SimTime, FileId)> + 'a {
        self.dfs.shard_tier_recency_iter(self.shard, tier)
    }

    /// Like [`ShardView::tier_recency_iter`], resuming strictly after a
    /// previously-returned entry (an O(log n) range seek).
    pub fn tier_recency_iter_after(
        &self,
        tier: StorageTier,
        after: Option<(SimTime, FileId)>,
    ) -> impl Iterator<Item = (SimTime, FileId)> + 'a {
        self.dfs
            .shard_tier_recency_iter_after(self.shard, tier, after)
    }

    /// This shard's files with at least one replica on `tier`, ascending
    /// by id — one leg of the global [`TieredDfs::files_on_tier`] merge.
    pub fn files_on_tier(&self, tier: StorageTier) -> impl Iterator<Item = FileId> + 'a {
        self.dfs.shard_files_on_tier(self.shard, tier)
    }

    /// This shard's under-replicated files as `(file, deficient blocks)`,
    /// ascending by id — one leg of the degraded-set merge behind
    /// [`TieredDfs::under_redundant_files`].
    pub fn degraded_files(&self) -> impl Iterator<Item = (FileId, u32)> + 'a {
        self.dfs.shard_degraded_files(self.shard)
    }
}

/// One shard's result from an epoch fan-out: the payload a scan closure
/// produced for that shard, tagged with the shard index. The scan always
/// returns these in ascending shard order, so a k-way merge over
/// `plans.iter().map(|p| p.items...)` consumes shard legs in exactly the
/// order the global merged iterators do.
#[derive(Debug, Clone)]
pub struct ShardEpochPlan<T> {
    /// Which shard `items` covers.
    pub shard: usize,
    /// What the scan produced for this shard.
    pub items: T,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfsConfig;
    use octo_common::ByteSize;

    fn dfs_with_files(n: u64) -> TieredDfs {
        let mut dfs = TieredDfs::new(DfsConfig::default()).expect("default config");
        for i in 0..n {
            let t = SimTime::from_millis(i);
            let plan = dfs
                .create_file(&format!("/f{i}"), ByteSize::mb(1), t)
                .expect("room");
            dfs.commit_file(plan.file, t).expect("fresh");
        }
        dfs
    }

    #[test]
    fn scan_results_arrive_in_shard_order_at_any_thread_count() {
        let dfs = dfs_with_files(100);
        let serial = EpochPool::serial().scan_shards(&dfs, |v| {
            v.tier_recency_iter(StorageTier::Memory).collect::<Vec<_>>()
        });
        for threads in [2, 4, 16, 32] {
            let parallel = EpochPool::new(threads).scan_shards(&dfs, |v| {
                v.tier_recency_iter(StorageTier::Memory).collect::<Vec<_>>()
            });
            assert_eq!(parallel.len(), SHARD_COUNT);
            for (s, (a, b)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(a.shard, s);
                assert_eq!(b.shard, s);
                assert_eq!(a.items, b.items, "shard {s} differs at {threads} threads");
            }
        }
    }

    #[test]
    fn merged_shard_views_reproduce_global_iterators() {
        use crate::shard::MergeAsc;
        let dfs = dfs_with_files(64);
        let plans = EpochPool::new(3).scan_shards(&dfs, |v| {
            v.files_on_tier(StorageTier::Memory).collect::<Vec<_>>()
        });
        let merged: Vec<FileId> =
            MergeAsc::new(plans.iter().map(|p| p.items.iter().copied())).collect();
        let global: Vec<FileId> = dfs.files_on_tier(StorageTier::Memory).collect();
        assert_eq!(merged, global);
    }

    #[test]
    fn pool_clamps_to_one_thread() {
        assert!(EpochPool::new(0).is_serial());
        assert_eq!(EpochPool::new(0).threads(), 1);
        assert_eq!(EpochPool::default(), EpochPool::serial());
    }
}
