//! Erasure coding for cold tiers: a systematic Reed–Solomon codec over
//! GF(256) plus the stripe metadata the block manager tracks.
//!
//! A block downgraded into an [`crate::config::RedundancyMode::Erasure`]
//! tier is split into `k` data shards of `ceil(size / k)` bytes and extended
//! with `m` parity shards computed from a Cauchy generator matrix; any `k`
//! of the `k + m` shards reconstruct the block, so up to `m` concurrent
//! shard losses are survivable at `(k + m) / k` byte overhead instead of
//! the replication factor.
//!
//! Two layers live here:
//!
//! * [`ReedSolomon`] — the actual codec (encode, reconstruct via
//!   Gauss–Jordan inversion of the surviving rows). The simulation never
//!   moves real payload bytes, but the codec is exercised end to end by the
//!   unit tests and `examples/erasure.rs` so the math is honest, not a
//!   placeholder.
//! * [`Stripe`] / [`ShardLoc`] / [`StripeManager`] — the metadata layer:
//!   which `(node, tier)` holds which shard index, which shards are dead
//!   (node down) or gone (device lost), and whether the stripe is readable,
//!   degraded, or lost. [`crate::block::BlockManager`] owns a
//!   `StripeManager` and folds stripe deficiency into the same incremental
//!   degraded set the replication repair path walks.

use octo_common::{BlockId, ByteSize, FileId, NodeId, StorageTier};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// GF(256) arithmetic (AES polynomial 0x11d), const-built tables
// ---------------------------------------------------------------------

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
        i += 1;
    }
    // Mirror the cycle so `exp[log a + log b]` never needs a mod 255.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const GF_TABLES: ([u8; 512], [u8; 256]) = build_tables();

#[inline]
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let (exp, log) = (&GF_TABLES.0, &GF_TABLES.1);
    exp[log[a as usize] as usize + log[b as usize] as usize]
}

#[inline]
fn gf_inv(a: u8) -> u8 {
    debug_assert!(a != 0, "zero has no inverse in GF(256)");
    let (exp, log) = (&GF_TABLES.0, &GF_TABLES.1);
    exp[255 - log[a as usize] as usize]
}

/// A typed decode failure from [`ReedSolomon::reconstruct`].
///
/// Carrying the survivor count lets callers report *how far gone* a stripe
/// is (and the DFS surface it as a lost-file record) instead of collapsing
/// every failure into a bare `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EcError {
    /// Fewer than `need = k` shards survive: the stripe is unrecoverable
    /// no matter which decode strategy is tried.
    InsufficientShards {
        /// Shards actually present.
        have: usize,
        /// Shards required (`k`).
        need: usize,
    },
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::InsufficientShards { have, need } => {
                write!(
                    f,
                    "insufficient shards to reconstruct: have {have}, need {need}"
                )
            }
        }
    }
}

impl std::error::Error for EcError {}

/// Size of one shard of a `size`-byte block under EC(k, _): ceiling
/// division, so `k` shards always cover the block.
pub fn shard_size(size: ByteSize, k: u8) -> ByteSize {
    assert!(k >= 1, "EC needs k >= 1");
    ByteSize::from_bytes(size.as_bytes().div_ceil(k as u64))
}

// ---------------------------------------------------------------------
// The codec
// ---------------------------------------------------------------------

/// A systematic Reed–Solomon code: shards `0..k` are the data verbatim,
/// shards `k..k+m` are parity rows of a Cauchy matrix (`1 / (x_j ^ y_i)`
/// with `y_i = i`, `x_j = k + j` — all distinct, so every square submatrix
/// of the generator is invertible and *any* `k` shards reconstruct).
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// `m x k` parity generator rows.
    parity: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Builds the EC(k, m) codec. Panics unless `1 <= k`, `1 <= m`, and
    /// `k + m <= 256` (the field size bounds the Cauchy construction).
    pub fn new(k: u8, m: u8) -> Self {
        assert!(k >= 1 && m >= 1, "EC needs k >= 1 and m >= 1");
        let (k, m) = (k as usize, m as usize);
        assert!(k + m <= 256, "EC(k, m) needs k + m <= 256");
        let parity = (0..m)
            .map(|j| {
                (0..k)
                    .map(|i| gf_inv(((k + j) ^ i) as u8))
                    .collect::<Vec<u8>>()
            })
            .collect();
        ReedSolomon { k, m, parity }
    }

    /// Data shard count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Splits `payload` into `k` equal data shards (zero-padded) and
    /// appends `m` parity shards: the full `k + m` stripe.
    pub fn encode_payload(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let len = payload.len().div_ceil(self.k).max(1);
        let mut shards: Vec<Vec<u8>> = (0..self.k)
            .map(|i| {
                let mut s = vec![0u8; len];
                let start = (i * len).min(payload.len());
                let end = ((i + 1) * len).min(payload.len());
                s[..end - start].copy_from_slice(&payload[start..end]);
                s
            })
            .collect();
        for j in 0..self.m {
            let mut p = vec![0u8; len];
            for (i, data) in shards[..self.k].iter().enumerate() {
                let c = self.parity[j][i];
                for (pb, &db) in p.iter_mut().zip(data) {
                    *pb ^= gf_mul(c, db);
                }
            }
            shards.push(p);
        }
        shards
    }

    /// Reassembles the original `payload_len` bytes from the data shards.
    pub fn join_payload(&self, shards: &[Vec<u8>], payload_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload_len);
        for s in &shards[..self.k] {
            out.extend_from_slice(s);
        }
        out.truncate(payload_len);
        out
    }

    /// Fills every `None` slot from any `k` surviving shards. With fewer
    /// than `k` survivors the input is left untouched and the typed
    /// [`EcError::InsufficientShards`] reports how many were found.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let n = self.k + self.m;
        assert_eq!(shards.len(), n, "need one slot per shard index");
        let have: Vec<usize> = (0..n).filter(|&i| shards[i].is_some()).collect();
        if have.len() < self.k {
            return Err(EcError::InsufficientShards {
                have: have.len(),
                need: self.k,
            });
        }
        if shards.iter_mut().all(|s| s.is_some()) {
            return Ok(());
        }
        let len = shards[have[0]].as_ref().expect("listed as present").len();

        // Rows of the generator matrix for the first k survivors.
        let chosen = &have[..self.k];
        let mut mat: Vec<Vec<u8>> = chosen
            .iter()
            .map(|&r| {
                if r < self.k {
                    let mut row = vec![0u8; self.k];
                    row[r] = 1;
                    row
                } else {
                    self.parity[r - self.k].clone()
                }
            })
            .collect();

        // Gauss–Jordan inversion in GF(256).
        let mut inv: Vec<Vec<u8>> = (0..self.k)
            .map(|i| {
                let mut row = vec![0u8; self.k];
                row[i] = 1;
                row
            })
            .collect();
        for col in 0..self.k {
            let pivot = (col..self.k)
                .find(|&r| mat[r][col] != 0)
                .expect("Cauchy submatrices are invertible");
            mat.swap(col, pivot);
            inv.swap(col, pivot);
            let scale = gf_inv(mat[col][col]);
            for c in 0..self.k {
                mat[col][c] = gf_mul(mat[col][c], scale);
                inv[col][c] = gf_mul(inv[col][c], scale);
            }
            for r in 0..self.k {
                if r != col && mat[r][col] != 0 {
                    let f = mat[r][col];
                    for c in 0..self.k {
                        let (m_src, i_src) = (mat[col][c], inv[col][c]);
                        mat[r][c] ^= gf_mul(f, m_src);
                        inv[r][c] ^= gf_mul(f, i_src);
                    }
                }
            }
        }

        // data[i] = sum_c inv[i][c] * shard[chosen[c]].
        let data: Vec<Vec<u8>> = (0..self.k)
            .map(|i| {
                let mut out = vec![0u8; len];
                for (c, &src) in chosen.iter().enumerate() {
                    let f = inv[i][c];
                    if f == 0 {
                        continue;
                    }
                    let shard = shards[src].as_ref().expect("chosen survivor");
                    for (ob, &sb) in out.iter_mut().zip(shard) {
                        *ob ^= gf_mul(f, sb);
                    }
                }
                out
            })
            .collect();

        for (i, slot) in shards.iter_mut().take(self.k).enumerate() {
            if slot.is_none() {
                *slot = Some(data[i].clone());
            }
        }
        for j in 0..self.m {
            if shards[self.k + j].is_none() {
                let mut p = vec![0u8; len];
                for (i, d) in data.iter().enumerate() {
                    let c = self.parity[j][i];
                    for (pb, &db) in p.iter_mut().zip(d) {
                        *pb ^= gf_mul(c, db);
                    }
                }
                shards[self.k + j] = Some(p);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Stripe metadata
// ---------------------------------------------------------------------

/// Where one shard of a stripe lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLoc {
    /// The node holding the shard.
    pub node: NodeId,
    /// The tier the shard sits on (the stripe's home tier unless a repair
    /// spilled it down).
    pub tier: StorageTier,
    /// Shard index: `0..k` data, `k..k+m` parity.
    pub index: u8,
    /// True while the holding node is down (the shard may come back).
    pub dead: bool,
}

/// The EC layout of one block: `k + m` shard placements on distinct nodes.
///
/// Shards destroyed for good (device loss) are removed from `shards`;
/// shards on crashed nodes stay listed with `dead = true` and revive on
/// recovery. The stripe is *readable* while at least `k` shards are live,
/// *degraded* when readable but missing a live data shard (a read must
/// reconstruct), and *lost* once fewer than `k` shards exist at all —
/// then even recovering every dead node cannot bring the data back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stripe {
    /// The protected block.
    pub block: BlockId,
    /// The file owning the block.
    pub file: FileId,
    /// The EC-configured tier the stripe was written to.
    pub home: StorageTier,
    /// Data shard count.
    pub k: u8,
    /// Parity shard count.
    pub m: u8,
    /// Bytes per shard (`ceil(block size / k)`).
    pub shard_size: ByteSize,
    /// Current shard placements, ascending by index.
    pub shards: Vec<ShardLoc>,
}

impl Stripe {
    /// Total shard count when healthy.
    pub fn total(&self) -> usize {
        self.k as usize + self.m as usize
    }

    /// Shards that still exist, dead or alive.
    pub fn present(&self) -> usize {
        self.shards.len()
    }

    /// Shards that are live (exist and their node is up).
    pub fn live(&self) -> usize {
        self.shards.iter().filter(|s| !s.dead).count()
    }

    /// The live shard with `index`, if any.
    pub fn live_shard(&self, index: u8) -> Option<&ShardLoc> {
        self.shards.iter().find(|s| s.index == index && !s.dead)
    }

    /// All `k + m` shards live: nothing to repair.
    pub fn is_fully_redundant(&self) -> bool {
        self.live() == self.total()
    }

    /// At least `k` live shards: the block is readable right now.
    pub fn is_readable(&self) -> bool {
        self.live() >= self.k as usize
    }

    /// Readable, but some data shard is not live: a read must fetch `k`
    /// surviving shards and decode (the degraded-read penalty).
    pub fn needs_degraded_read(&self) -> bool {
        self.is_readable() && (0..self.k).any(|i| self.live_shard(i).is_none())
    }

    /// Fewer than `k` shards exist at all: unrecoverable.
    pub fn is_lost(&self) -> bool {
        self.present() < self.k as usize
    }

    /// Indices in `0..k+m` with no live shard, ascending — what repair
    /// must rebuild to restore full redundancy.
    pub fn missing_indices(&self) -> Vec<u8> {
        (0..self.total() as u8)
            .filter(|&i| self.live_shard(i).is_none())
            .collect()
    }

    /// Nodes currently holding any shard (dead or alive) — rebuilt shards
    /// must land elsewhere to keep single-node losses within `m`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.shards.iter().map(|s| s.node)
    }
}

/// Stripe metadata for every erasure-coded block, keyed by block id.
///
/// A `BTreeMap` keeps every scan (fault handling, repair candidate walks)
/// in ascending block order — the same determinism rule the rest of the
/// block bookkeeping follows, so the pooled epoch engine stays
/// byte-identical at any thread count.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StripeManager {
    stripes: BTreeMap<BlockId, Stripe>,
    rebuilt: u64,
}

impl StripeManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stripe protecting `block`, if any.
    pub fn get(&self, block: BlockId) -> Option<&Stripe> {
        self.stripes.get(&block)
    }

    pub(crate) fn get_mut(&mut self, block: BlockId) -> Option<&mut Stripe> {
        self.stripes.get_mut(&block)
    }

    pub(crate) fn insert(&mut self, stripe: Stripe) {
        self.stripes.insert(stripe.block, stripe);
    }

    pub(crate) fn remove(&mut self, block: BlockId) -> Option<Stripe> {
        self.stripes.remove(&block)
    }

    /// All stripes, ascending by block id.
    pub fn iter(&self) -> impl Iterator<Item = &Stripe> {
        self.stripes.values()
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// True when no block is striped.
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Cumulative count of shard rebuilds completed by repair.
    pub fn stripes_rebuilt(&self) -> u64 {
        self.rebuilt
    }

    pub(crate) fn note_rebuilt(&mut self) {
        self.rebuilt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        // Deterministic pseudo-random bytes (xorshift), no RNG dependency.
        let mut x = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect()
    }

    #[test]
    fn gf256_field_axioms_hold() {
        // Spot-check multiplicative inverses and distributivity.
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a * a^-1 == 1 for a={a}");
        }
        for &(a, b, c) in &[(7u8, 13u8, 200u8), (255, 254, 3), (16, 16, 16)] {
            assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
            assert_eq!(gf_mul(a, b), gf_mul(b, a));
        }
    }

    #[test]
    fn round_trip_without_loss() {
        let rs = ReedSolomon::new(4, 2);
        let data = payload(1000);
        let shards = rs.encode_payload(&data);
        assert_eq!(shards.len(), 6);
        assert_eq!(rs.join_payload(&shards, 1000), data);
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        let rs = ReedSolomon::new(4, 2);
        let data = payload(777);
        let full = rs.encode_payload(&data);
        // Every way of losing exactly m = 2 shards must still decode.
        for lose_a in 0..6 {
            for lose_b in (lose_a + 1)..6 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[lose_a] = None;
                shards[lose_b] = None;
                assert_eq!(rs.reconstruct(&mut shards), Ok(()), "({lose_a},{lose_b})");
                let rebuilt: Vec<Vec<u8>> =
                    shards.into_iter().map(|s| s.expect("filled")).collect();
                assert_eq!(rebuilt, full, "lost ({lose_a},{lose_b})");
            }
        }
    }

    #[test]
    fn more_than_m_losses_fail_with_typed_error() {
        let rs = ReedSolomon::new(4, 2);
        let full = rs.encode_payload(&payload(256));
        let mut shards: Vec<Option<Vec<u8>>> = full.into_iter().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[5] = None;
        // Regression: this used to be a bare `false`, losing the survivor
        // count callers need to classify the stripe as lost.
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(EcError::InsufficientShards { have: 3, need: 4 }),
            "3 losses exceed m = 2"
        );
        assert!(shards[0].is_none(), "failed reconstruct leaves input alone");
        let err = EcError::InsufficientShards { have: 3, need: 4 };
        assert_eq!(
            err.to_string(),
            "insufficient shards to reconstruct: have 3, need 4"
        );
    }

    #[test]
    fn wide_codes_and_single_parity() {
        for (k, m) in [(2u8, 1u8), (6, 3), (10, 4)] {
            let rs = ReedSolomon::new(k, m);
            let data = payload(509);
            let full = rs.encode_payload(&data);
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            // Lose the first m shards (all data-side where possible).
            for s in shards.iter_mut().take(m as usize) {
                *s = None;
            }
            assert_eq!(rs.reconstruct(&mut shards), Ok(()));
            let rebuilt: Vec<Vec<u8>> = shards.into_iter().map(|s| s.expect("filled")).collect();
            assert_eq!(rs.join_payload(&rebuilt, 509), data, "EC({k},{m})");
        }
    }

    #[test]
    fn shard_size_is_ceiling_division() {
        assert_eq!(shard_size(ByteSize::mb(128), 4), ByteSize::mb(32));
        assert_eq!(
            shard_size(ByteSize::from_bytes(10), 4),
            ByteSize::from_bytes(3)
        );
        assert_eq!(
            shard_size(ByteSize::from_bytes(1), 4),
            ByteSize::from_bytes(1)
        );
    }

    #[test]
    fn stripe_health_states() {
        let mk = |dead: &[u8], gone: &[u8]| Stripe {
            block: BlockId(0),
            file: FileId(0),
            home: StorageTier::Hdd,
            k: 4,
            m: 2,
            shard_size: ByteSize::mb(32),
            shards: (0..6u8)
                .filter(|i| !gone.contains(i))
                .map(|i| ShardLoc {
                    node: NodeId(i as u32),
                    tier: StorageTier::Hdd,
                    index: i,
                    dead: dead.contains(&i),
                })
                .collect(),
        };
        let healthy = mk(&[], &[]);
        assert!(healthy.is_fully_redundant() && healthy.is_readable());
        assert!(!healthy.needs_degraded_read() && !healthy.is_lost());
        assert!(healthy.missing_indices().is_empty());

        // Two dead data shards: readable only via reconstruction.
        let degraded = mk(&[0, 1], &[]);
        assert!(degraded.is_readable() && degraded.needs_degraded_read());
        assert_eq!(degraded.missing_indices(), vec![0, 1]);
        assert!(!degraded.is_lost());

        // A dead parity shard: readable, no decode needed.
        let parity_down = mk(&[5], &[]);
        assert!(parity_down.is_readable() && !parity_down.needs_degraded_read());

        // Three shards gone for good: fewer than k remain ⇒ lost.
        let lost = mk(&[], &[0, 1, 2]);
        assert!(lost.is_lost() && !lost.is_readable());

        // Three dead (not gone): unreadable now, but not lost — recovery
        // can restore them.
        let offline = mk(&[0, 1, 2], &[]);
        assert!(!offline.is_readable() && !offline.is_lost());
    }
}
