//! Transfer bookkeeping for the Replication Manager / Monitor (Figure 3).
//!
//! A [`Transfer`] is the unit the upgrade/downgrade policies schedule: all
//! block-level actions needed to move (or drop, or copy) one file's replicas
//! with respect to a tier. The DFS facade creates transfers two-phase —
//! space is reserved and source replicas flagged at *plan* time, and the
//! world is mutated at *completion* time — so the compute layer can overlap
//! transfer I/O with everything else.

use octo_common::{BlockId, ByteSize, FileId, NodeId, PerTier, StorageTier};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of an in-flight transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransferId(pub u64);

impl std::fmt::Display for TransferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xfer-{}", self.0)
    }
}

/// Why a transfer exists (drives which statistics it feeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferKind {
    /// Replica moving to a higher tier (or a cache copy being created).
    Upgrade,
    /// Replica moving to a lower tier (or being dropped).
    Downgrade,
    /// Re-replication of an under-replicated block (Replication Monitor
    /// repair after a node crash or disk loss).
    Repair,
}

/// One block-level action within a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockAction {
    /// Move the replica at `from` to `to`. Bytes cross devices (and the
    /// network when nodes differ).
    Move {
        /// Source replica location.
        from: (NodeId, StorageTier),
        /// Destination (space is reserved there while in flight).
        to: (NodeId, StorageTier),
    },
    /// Create an additional replica at `to`, reading from `from` (which
    /// stays). HDFS-cache style caching.
    Copy {
        /// Replica to read from.
        from: (NodeId, StorageTier),
        /// Destination of the new copy.
        to: (NodeId, StorageTier),
    },
    /// Delete the replica at `from`. No data moves.
    Drop {
        /// Replica to delete.
        from: (NodeId, StorageTier),
    },
    /// Write shard `index` of the block's erasure-coding stripe to `to`,
    /// reading the block from the replica at `from` (which a companion
    /// [`BlockAction::Drop`] removes once the stripe is complete). The
    /// transfer size is one shard, so striping a block into EC(k, m)
    /// moves `(k + m) / k` of its bytes instead of a full extra copy.
    EcWrite {
        /// Replica the encoder reads from.
        from: (NodeId, StorageTier),
        /// Destination device of the shard.
        to: (NodeId, StorageTier),
        /// Shard index: `0..k` data, `k..k+m` parity.
        index: u8,
    },
    /// Reconstruct the missing shard `index` of a stripe onto `to` from
    /// the `k` surviving shards (`from` is the reference survivor the flow
    /// model charges; the fan-in from the other `k - 1` shards runs in
    /// parallel across their devices).
    EcRebuild {
        /// The surviving shard anchoring the reconstruction read.
        from: (NodeId, StorageTier),
        /// Destination device of the rebuilt shard.
        to: (NodeId, StorageTier),
        /// Shard index being rebuilt.
        index: u8,
    },
    /// De-stripe: decode the whole block from its stripe (anchored at the
    /// shard `from`) and materialize a full replica at `to`. Completion
    /// deletes the stripe — upgrades out of an EC tier go back to
    /// replicated form.
    Unstripe {
        /// The shard anchoring the decode read.
        from: (NodeId, StorageTier),
        /// Destination of the reconstructed replica.
        to: (NodeId, StorageTier),
    },
}

impl BlockAction {
    /// Bytes that must cross devices for this action (zero for drops).
    pub fn moves_bytes(&self) -> bool {
        !matches!(self, BlockAction::Drop { .. })
    }

    /// The destination, if the action lands data somewhere.
    pub fn destination(&self) -> Option<(NodeId, StorageTier)> {
        match self {
            BlockAction::Move { to, .. }
            | BlockAction::Copy { to, .. }
            | BlockAction::EcWrite { to, .. }
            | BlockAction::EcRebuild { to, .. }
            | BlockAction::Unstripe { to, .. } => Some(*to),
            BlockAction::Drop { .. } => None,
        }
    }

    /// The source location the action reads from or removes.
    pub fn source(&self) -> (NodeId, StorageTier) {
        match self {
            BlockAction::Move { from, .. }
            | BlockAction::Copy { from, .. }
            | BlockAction::Drop { from }
            | BlockAction::EcWrite { from, .. }
            | BlockAction::EcRebuild { from, .. }
            | BlockAction::Unstripe { from, .. } => *from,
        }
    }
}

/// One block's part of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockTransfer {
    /// Block being acted on.
    pub block: BlockId,
    /// Size of that block.
    pub size: ByteSize,
    /// What happens to it.
    pub action: BlockAction,
}

/// A scheduled file-granularity replica transfer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transfer {
    /// This transfer's id.
    pub id: TransferId,
    /// File whose replicas move.
    pub file: FileId,
    /// Upgrade or downgrade.
    pub kind: TransferKind,
    /// Per-block actions.
    pub blocks: Vec<BlockTransfer>,
}

impl Transfer {
    /// Total bytes that must physically move (drops excluded).
    pub fn bytes_moving(&self) -> ByteSize {
        self.blocks
            .iter()
            .filter(|b| b.action.moves_bytes())
            .map(|b| b.size)
            .sum()
    }
}

/// Cumulative movement statistics (feeds Table 4 and the efficiency
/// analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MovementStats {
    /// Bytes landed on each tier by upgrades.
    pub upgraded_to: PerTier<ByteSize>,
    /// Bytes landed on each tier by downgrades.
    pub downgraded_to: PerTier<ByteSize>,
    /// Bytes of replicas deleted from each tier.
    pub dropped_from: PerTier<ByteSize>,
    /// Bytes landed on each tier by repair re-replication.
    pub repaired_to: PerTier<ByteSize>,
    /// Bytes of erasure-coded shards rebuilt onto each tier by stripe
    /// reconstruction repair (disjoint from `repaired_to`).
    pub reconstructed_to: PerTier<ByteSize>,
    /// Completed transfer count.
    pub transfers_completed: u64,
    /// Cancelled transfer count.
    pub transfers_cancelled: u64,
    /// Completed repair-transfer count (also included in
    /// `transfers_completed`).
    pub repairs_completed: u64,
}

impl MovementStats {
    /// Total bytes re-replicated by repair transfers across all tiers.
    pub fn bytes_re_replicated(&self) -> ByteSize {
        self.repaired_to.iter().map(|(_, v)| *v).sum()
    }

    /// Total bytes of EC shards rebuilt by reconstruction repair.
    pub fn bytes_reconstructed(&self) -> ByteSize {
        self.reconstructed_to.iter().map(|(_, v)| *v).sum()
    }
}

/// Table of in-flight transfers.
///
/// Besides the transfers themselves the table incrementally maintains the
/// per-tier *pending* byte counters the tiering policies consult on every
/// decision: bytes scheduled to leave a tier (Move/Drop sources) and bytes
/// reserved to land on one (Move/Copy destinations). Counters are bumped at
/// plan time and settled at completion/cancellation, so reading them is
/// O(1) instead of a namespace scan.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransferTable {
    next_id: u64,
    active: HashMap<TransferId, Transfer>,
    stats: MovementStats,
    /// Bytes scheduled to move off or be dropped from each tier.
    pending_outgoing: PerTier<ByteSize>,
    /// Bytes reserved to land on each tier by in-flight transfers.
    pending_incoming: PerTier<ByteSize>,
}

impl TransferTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a transfer, assigning its id.
    pub fn insert(
        &mut self,
        file: FileId,
        kind: TransferKind,
        blocks: Vec<BlockTransfer>,
    ) -> TransferId {
        let id = TransferId(self.next_id);
        self.next_id += 1;
        for bt in &blocks {
            match bt.action {
                BlockAction::Move { from, to } => {
                    *self.pending_outgoing.get_mut(from.1) += bt.size;
                    *self.pending_incoming.get_mut(to.1) += bt.size;
                }
                BlockAction::Copy { to, .. }
                | BlockAction::EcWrite { to, .. }
                | BlockAction::EcRebuild { to, .. }
                | BlockAction::Unstripe { to, .. } => {
                    *self.pending_incoming.get_mut(to.1) += bt.size;
                }
                BlockAction::Drop { from } => {
                    *self.pending_outgoing.get_mut(from.1) += bt.size;
                }
            }
        }
        self.active.insert(
            id,
            Transfer {
                id,
                file,
                kind,
                blocks,
            },
        );
        id
    }

    /// Settles the pending counters of a transfer leaving the table.
    fn release_pending(&mut self, t: &Transfer) {
        for bt in &t.blocks {
            match bt.action {
                BlockAction::Move { from, to } => {
                    let out = self.pending_outgoing.get_mut(from.1);
                    *out = out.saturating_sub(bt.size);
                    let inc = self.pending_incoming.get_mut(to.1);
                    *inc = inc.saturating_sub(bt.size);
                }
                BlockAction::Copy { to, .. }
                | BlockAction::EcWrite { to, .. }
                | BlockAction::EcRebuild { to, .. }
                | BlockAction::Unstripe { to, .. } => {
                    let inc = self.pending_incoming.get_mut(to.1);
                    *inc = inc.saturating_sub(bt.size);
                }
                BlockAction::Drop { from } => {
                    let out = self.pending_outgoing.get_mut(from.1);
                    *out = out.saturating_sub(bt.size);
                }
            }
        }
    }

    /// Bytes currently scheduled to move off or be dropped from `tier`.
    pub fn pending_outgoing(&self, tier: StorageTier) -> ByteSize {
        *self.pending_outgoing.get(tier)
    }

    /// Bytes currently reserved to land on `tier` by in-flight transfers.
    pub fn pending_incoming(&self, tier: StorageTier) -> ByteSize {
        *self.pending_incoming.get(tier)
    }

    /// The in-flight transfer with this id.
    pub fn get(&self, id: TransferId) -> Option<&Transfer> {
        self.active.get(&id)
    }

    /// Removes a transfer at completion, recording its statistics.
    pub fn complete(&mut self, id: TransferId) -> Option<Transfer> {
        let t = self.active.remove(&id)?;
        self.release_pending(&t);
        self.stats.transfers_completed += 1;
        if t.kind == TransferKind::Repair {
            self.stats.repairs_completed += 1;
        }
        for b in &t.blocks {
            match b.action {
                BlockAction::Move { to, .. }
                | BlockAction::Copy { to, .. }
                | BlockAction::EcWrite { to, .. }
                | BlockAction::Unstripe { to, .. } => {
                    let bucket = match t.kind {
                        TransferKind::Upgrade => self.stats.upgraded_to.get_mut(to.1),
                        TransferKind::Downgrade => self.stats.downgraded_to.get_mut(to.1),
                        TransferKind::Repair => self.stats.repaired_to.get_mut(to.1),
                    };
                    *bucket += b.size;
                }
                BlockAction::EcRebuild { to, .. } => {
                    *self.stats.reconstructed_to.get_mut(to.1) += b.size;
                }
                BlockAction::Drop { from } => {
                    *self.stats.dropped_from.get_mut(from.1) += b.size;
                }
            }
        }
        Some(t)
    }

    /// Ids of in-flight transfers with any block action whose source or
    /// destination sits on `node`, ascending — the transfers a node crash
    /// must cancel.
    pub fn ids_touching_node(&self, node: NodeId) -> Vec<TransferId> {
        let mut ids: Vec<TransferId> = self
            .active
            .values()
            .filter(|t| {
                t.blocks.iter().any(|bt| {
                    bt.action.source().0 == node
                        || bt.action.destination().is_some_and(|d| d.0 == node)
                })
            })
            .map(|t| t.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Ids of in-flight transfers touching the device `(node, tier)`,
    /// ascending — the transfers a disk loss must cancel.
    pub fn ids_touching_device(&self, node: NodeId, tier: StorageTier) -> Vec<TransferId> {
        let dev = (node, tier);
        let mut ids: Vec<TransferId> = self
            .active
            .values()
            .filter(|t| {
                t.blocks
                    .iter()
                    .any(|bt| bt.action.source() == dev || bt.action.destination() == Some(dev))
            })
            .map(|t| t.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Removes a transfer that was cancelled.
    pub fn cancel(&mut self, id: TransferId) -> Option<Transfer> {
        let t = self.active.remove(&id)?;
        self.release_pending(&t);
        self.stats.transfers_cancelled += 1;
        Some(t)
    }

    /// Number of in-flight transfers.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Cumulative movement statistics.
    pub fn stats(&self) -> &MovementStats {
        &self.stats
    }
}

/// The self-healing half of the Replication Monitor: schedules
/// re-replication of under-replicated files *and* reconstruction of
/// degraded erasure-coded stripes, bounded by one shared per-epoch byte
/// budget so repair traffic cannot starve the tiering policies. The two
/// repair flavors interleave deterministically: candidates come from the
/// same degraded set in ascending file id, and each file's plan is whatever
/// its blocks need (replica copies, shard rebuilds, or both).
///
/// Each epoch walks the DFS's incrementally-maintained degraded set in
/// ascending file id (deterministic) and plans one repair transfer per
/// file via [`crate::TieredDfs::plan_repair`] until the budget is spent.
/// The budget is a soft bound at file granularity: the transfer that
/// crosses it is still scheduled whole, so one oversized file cannot stall
/// repair forever.
///
/// Repair is protection-first and never trims: a dead replica whose node
/// recovers after the re-replication landed leaves the block with more
/// live replicas than the target. The excess stays visible in
/// `replication_report` (excess-replica pruning, as HDFS does it, is
/// future work).
#[derive(Debug, Clone, Copy)]
pub struct RepairPlanner {
    /// Byte budget per planning epoch.
    pub bandwidth_per_epoch: ByteSize,
}

impl RepairPlanner {
    /// A planner with the given per-epoch repair bandwidth.
    pub fn new(bandwidth_per_epoch: ByteSize) -> Self {
        RepairPlanner {
            bandwidth_per_epoch,
        }
    }

    /// Plans one epoch of repairs, returning the transfers scheduled.
    /// Files that cannot be repaired right now (a transfer already in
    /// flight, no live source, no placement) are skipped and retried on a
    /// later epoch.
    pub fn plan_epoch(&self, dfs: &mut crate::TieredDfs) -> Vec<TransferId> {
        let candidates: Vec<FileId> = dfs.under_redundant_files().map(|(f, _, _)| f).collect();
        self.plan_from_candidates(dfs, candidates)
    }

    /// [`RepairPlanner::plan_epoch`] with the candidate collection fanned
    /// out over `pool`: each worker filters one shard's slice of the
    /// degraded set, the slices are merged back in shard order (ascending
    /// file id — the exact order the serial walk produces), and the budget
    /// loop then runs serially. Byte-identical to the serial path at any
    /// thread count.
    pub fn plan_epoch_pooled(
        &self,
        dfs: &mut crate::TieredDfs,
        pool: &crate::epoch::EpochPool,
    ) -> Vec<TransferId> {
        if pool.is_serial() {
            return self.plan_epoch(dfs);
        }
        let shards = pool.scan_shards(dfs, |view| {
            view.dfs()
                .shard_under_redundant_files(view.shard())
                .collect::<Vec<FileId>>()
        });
        let candidates: Vec<FileId> =
            crate::shard::MergeAsc::new(shards.iter().map(|p| p.items.iter().copied())).collect();
        self.plan_from_candidates(dfs, candidates)
    }

    /// The shared budget loop: plans one repair per candidate, in order,
    /// until the per-epoch byte budget is spent.
    fn plan_from_candidates(
        &self,
        dfs: &mut crate::TieredDfs,
        candidates: impl IntoIterator<Item = FileId>,
    ) -> Vec<TransferId> {
        let mut budget = self.bandwidth_per_epoch;
        let mut planned = Vec::new();
        for file in candidates {
            if budget.is_zero() {
                break;
            }
            if let Ok(id) = dfs.plan_repair(file) {
                let bytes = dfs
                    .transfer(id)
                    .map(|t| t.bytes_moving())
                    .unwrap_or(ByteSize::ZERO);
                budget = budget.saturating_sub(bytes);
                planned.push(id);
            }
        }
        planned
    }
}

/// Replication monitor checks: blocks whose live replica count differs from
/// the target. Returns `(block, observed, target)` triples.
pub fn replication_report(
    blocks: impl Iterator<Item = (BlockId, usize)>,
    target: usize,
) -> Vec<(BlockId, usize, usize)> {
    blocks
        .filter(|(_, n)| *n != target)
        .map(|(b, n)| (b, n, target))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEM: StorageTier = StorageTier::Memory;
    const SSD: StorageTier = StorageTier::Ssd;

    fn mv(block: u64, size_mb: u64) -> BlockTransfer {
        BlockTransfer {
            block: BlockId(block),
            size: ByteSize::mb(size_mb),
            action: BlockAction::Move {
                from: (NodeId(0), MEM),
                to: (NodeId(0), SSD),
            },
        }
    }

    #[test]
    fn transfer_byte_accounting() {
        let t = Transfer {
            id: TransferId(0),
            file: FileId(0),
            kind: TransferKind::Downgrade,
            blocks: vec![
                mv(0, 128),
                BlockTransfer {
                    block: BlockId(1),
                    size: ByteSize::mb(64),
                    action: BlockAction::Drop {
                        from: (NodeId(1), MEM),
                    },
                },
            ],
        };
        assert_eq!(t.bytes_moving(), ByteSize::mb(128), "drops move nothing");
    }

    #[test]
    fn stats_accumulate_by_kind_and_tier() {
        let mut table = TransferTable::new();
        let id = table.insert(FileId(0), TransferKind::Downgrade, vec![mv(0, 128)]);
        assert_eq!(table.in_flight(), 1);
        table.complete(id).unwrap();
        assert_eq!(table.in_flight(), 0);
        assert_eq!(*table.stats().downgraded_to.get(SSD), ByteSize::mb(128));
        assert_eq!(*table.stats().upgraded_to.get(SSD), ByteSize::ZERO);
        assert_eq!(table.stats().transfers_completed, 1);

        let up = table.insert(
            FileId(1),
            TransferKind::Upgrade,
            vec![BlockTransfer {
                block: BlockId(2),
                size: ByteSize::mb(256),
                action: BlockAction::Copy {
                    from: (NodeId(0), StorageTier::Hdd),
                    to: (NodeId(0), MEM),
                },
            }],
        );
        table.complete(up).unwrap();
        assert_eq!(*table.stats().upgraded_to.get(MEM), ByteSize::mb(256));
    }

    #[test]
    fn pending_counters_track_plan_complete_cancel() {
        let mut table = TransferTable::new();
        let id = table.insert(
            FileId(0),
            TransferKind::Downgrade,
            vec![
                mv(0, 128), // MEM -> SSD
                BlockTransfer {
                    block: BlockId(1),
                    size: ByteSize::mb(64),
                    action: BlockAction::Drop {
                        from: (NodeId(1), MEM),
                    },
                },
                BlockTransfer {
                    block: BlockId(2),
                    size: ByteSize::mb(32),
                    action: BlockAction::Copy {
                        from: (NodeId(0), StorageTier::Hdd),
                        to: (NodeId(1), SSD),
                    },
                },
            ],
        );
        assert_eq!(table.pending_outgoing(MEM), ByteSize::mb(192), "move+drop");
        assert_eq!(table.pending_incoming(SSD), ByteSize::mb(160), "move+copy");
        assert_eq!(table.pending_outgoing(SSD), ByteSize::ZERO);
        assert_eq!(table.pending_incoming(MEM), ByteSize::ZERO);

        table.complete(id).unwrap();
        assert_eq!(table.pending_outgoing(MEM), ByteSize::ZERO);
        assert_eq!(table.pending_incoming(SSD), ByteSize::ZERO);

        let id2 = table.insert(FileId(1), TransferKind::Downgrade, vec![mv(3, 10)]);
        assert_eq!(table.pending_outgoing(MEM), ByteSize::mb(10));
        table.cancel(id2).unwrap();
        assert_eq!(table.pending_outgoing(MEM), ByteSize::ZERO);
        assert_eq!(table.pending_incoming(SSD), ByteSize::ZERO);
    }

    #[test]
    fn cancel_counts_separately() {
        let mut table = TransferTable::new();
        let id = table.insert(FileId(0), TransferKind::Upgrade, vec![mv(0, 10)]);
        table.cancel(id).unwrap();
        assert_eq!(table.stats().transfers_cancelled, 1);
        assert_eq!(table.stats().transfers_completed, 0);
        assert_eq!(*table.stats().upgraded_to.get(SSD), ByteSize::ZERO);
        assert!(table.complete(id).is_none());
    }

    #[test]
    fn action_accessors() {
        let a = BlockAction::Move {
            from: (NodeId(0), MEM),
            to: (NodeId(1), SSD),
        };
        assert!(a.moves_bytes());
        assert_eq!(a.destination(), Some((NodeId(1), SSD)));
        assert_eq!(a.source(), (NodeId(0), MEM));
        let d = BlockAction::Drop {
            from: (NodeId(2), MEM),
        };
        assert!(!d.moves_bytes());
        assert_eq!(d.destination(), None);
    }

    #[test]
    fn replication_report_flags_deviations() {
        let blocks = vec![
            (BlockId(0), 3usize),
            (BlockId(1), 2),
            (BlockId(2), 4),
            (BlockId(3), 3),
        ];
        let report = replication_report(blocks.into_iter(), 3);
        assert_eq!(report, vec![(BlockId(1), 2, 3), (BlockId(2), 4, 3)]);
    }
}
