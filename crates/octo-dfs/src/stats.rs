//! Per-file access statistics (the "Statistics" feed of Figure 3).
//!
//! Policies and the ML feature pipeline both read from here. For every file
//! the registry keeps its size, creation time, total access count, and the
//! last `k` access timestamps (the paper's `k = 12`; §7.7 measures ≤ 956
//! bytes per file for this bookkeeping).

use octo_common::{ByteSize, FileId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of the per-file exponentially-decayed heat score the
/// registry maintains incrementally (the watermark policy family's input).
///
/// Heat is a left fold over the file's event stream: creation seeds it at
/// `write_weight`, and every read applies
/// `heat ← read_weight + heat · 0.5^(Δt / half_life)` — the same
/// update-plus-decay shape as the LRFU/EXD weights, but owned by the
/// statistics feed so any consumer (policies, reports, tests) observes one
/// shared, incrementally-maintained value instead of re-deriving it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatConfig {
    /// Time for an untouched file's heat to halve.
    pub half_life: SimDuration,
    /// Heat added by one read access.
    pub read_weight: f64,
    /// Initial heat granted at creation (the write).
    pub write_weight: f64,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            half_life: SimDuration::from_hours(1),
            read_weight: 1.0,
            write_weight: 0.5,
        }
    }
}

impl HeatConfig {
    /// The multiplicative decay over `dt`.
    pub fn decay(&self, dt: SimDuration) -> f64 {
        let h = self.half_life.as_millis().max(1) as f64;
        0.5f64.powf(dt.as_millis() as f64 / h)
    }
}

/// Recorded access history of one file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccessStats {
    /// Logical file size.
    pub size: ByteSize,
    /// Creation timestamp.
    pub created: SimTime,
    /// Total number of accesses since creation.
    pub total_accesses: u64,
    /// The most recent access timestamps, oldest first, capped at `k`.
    recent: VecDeque<SimTime>,
    /// Decayed heat as of `heat_at` (see [`HeatConfig`]).
    heat: f64,
    /// Timestamp `heat` was last folded at.
    heat_at: SimTime,
    /// The decayed heat immediately *before* the last fold — the lowest
    /// point of the preceding inter-access interval (decay is monotone), so
    /// hysteresis consumers can observe the trough without a timer.
    heat_prev: f64,
}

impl AccessStats {
    fn new(size: ByteSize, created: SimTime, heat: &HeatConfig) -> Self {
        AccessStats {
            size,
            created,
            total_accesses: 0,
            recent: VecDeque::new(),
            heat: heat.write_weight,
            heat_at: created,
            heat_prev: 0.0,
        }
    }

    /// The most recent access, if the file was ever accessed.
    pub fn last_access(&self) -> Option<SimTime> {
        self.recent.back().copied()
    }

    /// The retained access timestamps, oldest first.
    pub fn accesses(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.recent.iter().copied()
    }

    /// Number of retained timestamps (≤ k).
    pub fn retained(&self) -> usize {
        self.recent.len()
    }

    /// Accesses recorded strictly after `t` among the retained window.
    pub fn accesses_since(&self, t: SimTime) -> usize {
        self.recent.iter().filter(|&&a| a > t).count()
    }

    /// The heat as last folded (no decay applied since the last event).
    pub fn heat_raw(&self) -> f64 {
        self.heat
    }

    /// The decayed heat observed at `now` (≥ the last fold time).
    pub fn heat_value(&self, now: SimTime, cfg: &HeatConfig) -> f64 {
        self.heat * cfg.decay(now.duration_since(self.heat_at))
    }

    /// The decayed heat immediately before the most recent event — the
    /// trough of the last inter-access interval, since decay only ever
    /// lowers heat between events. Zero for a freshly created file.
    pub fn heat_before_last(&self) -> f64 {
        self.heat_prev
    }

    /// Approximate bytes of bookkeeping held for this file (§7.7).
    pub fn approx_memory_bytes(&self) -> usize {
        std::mem::size_of::<AccessStats>() + self.recent.capacity() * std::mem::size_of::<SimTime>()
    }
}

/// Registry of [`AccessStats`] for all live files.
///
/// A dense slab keyed by [`FileId`]: ids are allocated sequentially and
/// never reused, so slot `id` holds file `id` and a lookup is an array
/// index — no hashing on the per-access hot path, and iteration touches
/// contiguous memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsRegistry {
    k: usize,
    heat: HeatConfig,
    files: Vec<Option<AccessStats>>,
    live: usize,
}

impl StatsRegistry {
    /// A registry retaining the last `k` access times per file, with the
    /// default heat-score parameters.
    pub fn new(k: usize) -> Self {
        Self::with_heat(k, HeatConfig::default())
    }

    /// A registry with explicit heat-score parameters.
    pub fn with_heat(k: usize, heat: HeatConfig) -> Self {
        assert!(k > 0, "access history length must be >= 1");
        StatsRegistry {
            k,
            heat,
            files: Vec::new(),
            live: 0,
        }
    }

    /// The configured history length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The heat-score parameters every tracked file folds under.
    pub fn heat_config(&self) -> &HeatConfig {
        &self.heat
    }

    fn slot_mut(&mut self, file: FileId) -> &mut Option<AccessStats> {
        let i = file.index();
        if i >= self.files.len() {
            self.files.resize_with(i + 1, || None);
        }
        &mut self.files[i]
    }

    /// Registers a newly created file.
    pub fn on_create(&mut self, file: FileId, size: ByteSize, now: SimTime) {
        let heat = self.heat;
        let slot = self.slot_mut(file);
        debug_assert!(slot.is_none(), "on_create for already-tracked {file}");
        *slot = Some(AccessStats::new(size, now, &heat));
        self.live += 1;
    }

    /// Records a read access.
    pub fn on_access(&mut self, file: FileId, now: SimTime) {
        let k = self.k;
        let heat = self.heat;
        if let Some(s) = self.files.get_mut(file.index()).and_then(|s| s.as_mut()) {
            s.total_accesses += 1;
            if s.recent.len() == k {
                s.recent.pop_front();
            }
            s.recent.push_back(now);
            s.heat_prev = s.heat * heat.decay(now.duration_since(s.heat_at));
            s.heat = heat.read_weight + s.heat_prev;
            s.heat_at = now;
        } else {
            debug_assert!(false, "on_access for untracked {file}");
        }
    }

    /// Forgets a deleted file.
    pub fn on_delete(&mut self, file: FileId) {
        if let Some(slot) = self.files.get_mut(file.index()) {
            if slot.take().is_some() {
                self.live -= 1;
            }
        }
    }

    /// Statistics of one file.
    pub fn get(&self, file: FileId) -> Option<&AccessStats> {
        self.files.get(file.index()).and_then(|s| s.as_ref())
    }

    /// Number of tracked files. O(1).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total bookkeeping bytes across all files (§7.7).
    pub fn approx_memory_bytes(&self) -> usize {
        self.files
            .iter()
            .flatten()
            .map(|s| s.approx_memory_bytes())
            .sum::<usize>()
            + self.live * std::mem::size_of::<FileId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_keeps_last_k() {
        let mut reg = StatsRegistry::new(3);
        let f = FileId(0);
        reg.on_create(f, ByteSize::mb(10), SimTime::ZERO);
        for s in 1..=5 {
            reg.on_access(f, SimTime::from_secs(s));
        }
        let st = reg.get(f).unwrap();
        assert_eq!(st.total_accesses, 5);
        assert_eq!(st.retained(), 3);
        let kept: Vec<u64> = st.accesses().map(|t| t.as_millis() / 1000).collect();
        assert_eq!(kept, vec![3, 4, 5], "oldest evicted first");
        assert_eq!(st.last_access(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn accesses_since_counts_window_only() {
        let mut reg = StatsRegistry::new(12);
        let f = FileId(1);
        reg.on_create(f, ByteSize::mb(1), SimTime::ZERO);
        for s in [10u64, 20, 30] {
            reg.on_access(f, SimTime::from_secs(s));
        }
        let st = reg.get(f).unwrap();
        assert_eq!(st.accesses_since(SimTime::from_secs(15)), 2);
        assert_eq!(st.accesses_since(SimTime::from_secs(30)), 0);
    }

    #[test]
    fn delete_forgets_file() {
        let mut reg = StatsRegistry::new(4);
        let f = FileId(2);
        reg.on_create(f, ByteSize::mb(1), SimTime::ZERO);
        assert_eq!(reg.len(), 1);
        reg.on_delete(f);
        assert!(reg.get(f).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn never_accessed_file_has_empty_history() {
        let mut reg = StatsRegistry::new(4);
        let f = FileId(3);
        reg.on_create(f, ByteSize::mb(1), SimTime::from_secs(9));
        let st = reg.get(f).unwrap();
        assert_eq!(st.last_access(), None);
        assert_eq!(st.total_accesses, 0);
        assert_eq!(st.created, SimTime::from_secs(9));
    }

    #[test]
    fn heat_decays_by_half_life_and_accumulates_on_reads() {
        let cfg = HeatConfig {
            half_life: SimDuration::from_hours(1),
            read_weight: 1.0,
            write_weight: 0.5,
        };
        let mut reg = StatsRegistry::with_heat(4, cfg);
        let f = FileId(0);
        reg.on_create(f, ByteSize::mb(1), SimTime::ZERO);
        let st = reg.get(f).unwrap();
        assert_eq!(st.heat_raw(), 0.5, "creation seeds heat at write_weight");
        assert_eq!(st.heat_before_last(), 0.0);
        // One half-life later the unread file has halved.
        let one_hl = SimTime::from_secs(3600);
        assert!((st.heat_value(one_hl, &cfg) - 0.25).abs() < 1e-12);

        reg.on_access(f, one_hl);
        let st = reg.get(f).unwrap();
        assert!((st.heat_raw() - 1.25).abs() < 1e-12);
        assert!((st.heat_before_last() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn heat_matches_from_scratch_left_fold() {
        let cfg = HeatConfig::default();
        let mut reg = StatsRegistry::with_heat(4, cfg);
        let f = FileId(0);
        let created = SimTime::from_secs(5);
        reg.on_create(f, ByteSize::mb(1), created);
        let reads = [40u64, 1000, 1001, 9000, 40_000];
        for s in reads {
            reg.on_access(f, SimTime::from_secs(s));
        }
        // Oracle: replay the event stream from scratch.
        let mut heat = cfg.write_weight;
        let mut at = created;
        for s in reads {
            let t = SimTime::from_secs(s);
            heat = cfg.read_weight + heat * cfg.decay(t.duration_since(at));
            at = t;
        }
        assert_eq!(reg.get(f).unwrap().heat_raw(), heat, "bit-identical fold");
    }

    #[test]
    fn memory_accounting_is_bounded() {
        let mut reg = StatsRegistry::new(12);
        for i in 0..100u64 {
            reg.on_create(FileId(i), ByteSize::mb(1), SimTime::ZERO);
            for s in 0..12 {
                reg.on_access(FileId(i), SimTime::from_secs(s));
            }
        }
        // The paper reports <= 956 bytes/file; our bookkeeping is leaner.
        let per_file = reg.approx_memory_bytes() / 100;
        assert!(per_file <= 956, "per-file bookkeeping {per_file}B");
    }
}
