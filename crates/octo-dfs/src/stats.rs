//! Per-file access statistics (the "Statistics" feed of Figure 3).
//!
//! Policies and the ML feature pipeline both read from here. For every file
//! the registry keeps its size, creation time, total access count, and the
//! last `k` access timestamps (the paper's `k = 12`; §7.7 measures ≤ 956
//! bytes per file for this bookkeeping).

use octo_common::{ByteSize, FileId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Recorded access history of one file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccessStats {
    /// Logical file size.
    pub size: ByteSize,
    /// Creation timestamp.
    pub created: SimTime,
    /// Total number of accesses since creation.
    pub total_accesses: u64,
    /// The most recent access timestamps, oldest first, capped at `k`.
    recent: VecDeque<SimTime>,
}

impl AccessStats {
    fn new(size: ByteSize, created: SimTime) -> Self {
        AccessStats {
            size,
            created,
            total_accesses: 0,
            recent: VecDeque::new(),
        }
    }

    /// The most recent access, if the file was ever accessed.
    pub fn last_access(&self) -> Option<SimTime> {
        self.recent.back().copied()
    }

    /// The retained access timestamps, oldest first.
    pub fn accesses(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.recent.iter().copied()
    }

    /// Number of retained timestamps (≤ k).
    pub fn retained(&self) -> usize {
        self.recent.len()
    }

    /// Accesses recorded strictly after `t` among the retained window.
    pub fn accesses_since(&self, t: SimTime) -> usize {
        self.recent.iter().filter(|&&a| a > t).count()
    }

    /// Approximate bytes of bookkeeping held for this file (§7.7).
    pub fn approx_memory_bytes(&self) -> usize {
        std::mem::size_of::<AccessStats>() + self.recent.capacity() * std::mem::size_of::<SimTime>()
    }
}

/// Registry of [`AccessStats`] for all live files.
///
/// A dense slab keyed by [`FileId`]: ids are allocated sequentially and
/// never reused, so slot `id` holds file `id` and a lookup is an array
/// index — no hashing on the per-access hot path, and iteration touches
/// contiguous memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsRegistry {
    k: usize,
    files: Vec<Option<AccessStats>>,
    live: usize,
}

impl StatsRegistry {
    /// A registry retaining the last `k` access times per file.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "access history length must be >= 1");
        StatsRegistry {
            k,
            files: Vec::new(),
            live: 0,
        }
    }

    /// The configured history length `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    fn slot_mut(&mut self, file: FileId) -> &mut Option<AccessStats> {
        let i = file.index();
        if i >= self.files.len() {
            self.files.resize_with(i + 1, || None);
        }
        &mut self.files[i]
    }

    /// Registers a newly created file.
    pub fn on_create(&mut self, file: FileId, size: ByteSize, now: SimTime) {
        let slot = self.slot_mut(file);
        debug_assert!(slot.is_none(), "on_create for already-tracked {file}");
        *slot = Some(AccessStats::new(size, now));
        self.live += 1;
    }

    /// Records a read access.
    pub fn on_access(&mut self, file: FileId, now: SimTime) {
        let k = self.k;
        if let Some(s) = self.files.get_mut(file.index()).and_then(|s| s.as_mut()) {
            s.total_accesses += 1;
            if s.recent.len() == k {
                s.recent.pop_front();
            }
            s.recent.push_back(now);
        } else {
            debug_assert!(false, "on_access for untracked {file}");
        }
    }

    /// Forgets a deleted file.
    pub fn on_delete(&mut self, file: FileId) {
        if let Some(slot) = self.files.get_mut(file.index()) {
            if slot.take().is_some() {
                self.live -= 1;
            }
        }
    }

    /// Statistics of one file.
    pub fn get(&self, file: FileId) -> Option<&AccessStats> {
        self.files.get(file.index()).and_then(|s| s.as_ref())
    }

    /// Number of tracked files. O(1).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total bookkeeping bytes across all files (§7.7).
    pub fn approx_memory_bytes(&self) -> usize {
        self.files
            .iter()
            .flatten()
            .map(|s| s.approx_memory_bytes())
            .sum::<usize>()
            + self.live * std::mem::size_of::<FileId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_keeps_last_k() {
        let mut reg = StatsRegistry::new(3);
        let f = FileId(0);
        reg.on_create(f, ByteSize::mb(10), SimTime::ZERO);
        for s in 1..=5 {
            reg.on_access(f, SimTime::from_secs(s));
        }
        let st = reg.get(f).unwrap();
        assert_eq!(st.total_accesses, 5);
        assert_eq!(st.retained(), 3);
        let kept: Vec<u64> = st.accesses().map(|t| t.as_millis() / 1000).collect();
        assert_eq!(kept, vec![3, 4, 5], "oldest evicted first");
        assert_eq!(st.last_access(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn accesses_since_counts_window_only() {
        let mut reg = StatsRegistry::new(12);
        let f = FileId(1);
        reg.on_create(f, ByteSize::mb(1), SimTime::ZERO);
        for s in [10u64, 20, 30] {
            reg.on_access(f, SimTime::from_secs(s));
        }
        let st = reg.get(f).unwrap();
        assert_eq!(st.accesses_since(SimTime::from_secs(15)), 2);
        assert_eq!(st.accesses_since(SimTime::from_secs(30)), 0);
    }

    #[test]
    fn delete_forgets_file() {
        let mut reg = StatsRegistry::new(4);
        let f = FileId(2);
        reg.on_create(f, ByteSize::mb(1), SimTime::ZERO);
        assert_eq!(reg.len(), 1);
        reg.on_delete(f);
        assert!(reg.get(f).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn never_accessed_file_has_empty_history() {
        let mut reg = StatsRegistry::new(4);
        let f = FileId(3);
        reg.on_create(f, ByteSize::mb(1), SimTime::from_secs(9));
        let st = reg.get(f).unwrap();
        assert_eq!(st.last_access(), None);
        assert_eq!(st.total_accesses, 0);
        assert_eq!(st.created, SimTime::from_secs(9));
    }

    #[test]
    fn memory_accounting_is_bounded() {
        let mut reg = StatsRegistry::new(12);
        for i in 0..100u64 {
            reg.on_create(FileId(i), ByteSize::mb(1), SimTime::ZERO);
            for s in 0..12 {
                reg.on_access(FileId(i), SimTime::from_secs(s));
            }
        }
        // The paper reports <= 956 bytes/file; our bookkeeping is leaner.
        let per_file = reg.approx_memory_bytes() / 100;
        assert!(per_file <= 956, "per-file bookkeeping {per_file}B");
    }
}
