//! The daemon's PID lock.
//!
//! Mutual exclusion between `octoctl` processes that execute moves. The
//! lock is a JSON file created with `O_EXCL` (`File::create_new`), so of
//! any number of concurrent acquirers exactly one wins the syscall race.
//! A lock whose recorded PID is no longer alive (crashed daemon) is
//! *stale*: the acquirer unlinks it and retries the exclusive create
//! exactly once — under a reclaim race, the second unlink loser hits
//! `AlreadyExists` on the retry and reports the winner's fresh lock.

use octo_common::{OctoError, Result};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// What the lock file records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockInfo {
    /// PID of the holding process.
    pub pid: u32,
    /// Wall-clock acquisition time, milliseconds since the Unix epoch
    /// (informational; liveness is decided by the PID, not the age).
    pub acquired_unix_ms: u64,
}

/// A held PID lock; releases (unlinks) on drop.
#[derive(Debug)]
pub struct PidLock {
    path: PathBuf,
}

/// Whether a PID refers to a live process. On Linux this is a `/proc`
/// probe; elsewhere liveness cannot be checked cheaply without FFI, so
/// locks are conservatively treated as live (never reclaimed).
pub fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl PidLock {
    /// Acquires the lock for the current process, reclaiming a stale one.
    pub fn acquire(path: &Path) -> Result<PidLock> {
        Self::acquire_as(path, std::process::id())
    }

    /// Acquires recording an explicit PID (tests use a known-dead PID to
    /// fabricate stale locks).
    pub fn acquire_as(path: &Path, pid: u32) -> Result<PidLock> {
        match Self::try_create(path, pid) {
            Ok(lock) => Ok(lock),
            Err(first) => {
                let holder = Self::read(path);
                if let Some(info) = holder {
                    if pid_alive(info.pid) {
                        return Err(OctoError::InvalidState(format!(
                            "another octoctl (pid {}) holds the lock {}",
                            info.pid,
                            path.display()
                        )));
                    }
                    // Stale: the holder is gone. Unlink and retry the
                    // exclusive create once; a concurrent reclaimer that
                    // wins the retry makes ours fail cleanly.
                    let _ = std::fs::remove_file(path);
                    return Self::try_create(path, pid).map_err(|_| {
                        OctoError::InvalidState(format!(
                            "lost the stale-lock reclaim race on {}",
                            path.display()
                        ))
                    });
                }
                // Unreadable/corrupt lock: same reclaim path — we cannot
                // name a live holder, and create_new arbitrates the race.
                let _ = std::fs::remove_file(path);
                Self::try_create(path, pid).map_err(|_| first)
            }
        }
    }

    /// The recorded holder of a lock file, if present and well-formed.
    pub fn read(path: &Path) -> Option<LockInfo> {
        let text = std::fs::read_to_string(path).ok()?;
        serde_json::from_str(&text).ok()
    }

    fn try_create(path: &Path, pid: u32) -> Result<PidLock> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| OctoError::InvalidState(format!("creating {}: {e}", dir.display())))?;
        }
        let mut f = std::fs::File::create_new(path).map_err(|e| {
            OctoError::InvalidState(format!("lock {} not acquired: {e}", path.display()))
        })?;
        let info = LockInfo {
            pid,
            acquired_unix_ms: unix_ms(),
        };
        let text = serde_json::to_string(&info)
            .map_err(|e| OctoError::InvalidState(format!("serializing lock info: {e}")))?;
        f.write_all(text.as_bytes())
            .and_then(|_| f.sync_all())
            .map_err(|e| {
                OctoError::InvalidState(format!("writing lock {}: {e}", path.display()))
            })?;
        Ok(PidLock {
            path: path.to_path_buf(),
        })
    }
}

impl Drop for PidLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_lock(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("octo-lock-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d.join("octoctl.pid")
    }

    /// A PID that is certainly dead: PID 1 is always alive on Linux, so
    /// probe downward from the max PID space for a free slot.
    fn dead_pid() -> u32 {
        (400_000..500_000u32)
            .rev()
            .find(|p| !pid_alive(*p))
            .expect("some free pid below 500000")
    }

    #[test]
    fn exclusive_while_holder_lives() {
        let path = tmp_lock("live");
        let lock = PidLock::acquire(&path).unwrap();
        let info = PidLock::read(&path).unwrap();
        assert_eq!(info.pid, std::process::id());
        let err = PidLock::acquire(&path).unwrap_err();
        assert_eq!(err.kind(), "invalid_state");
        drop(lock);
        assert!(!path.exists(), "released on drop");
        let _relock = PidLock::acquire(&path).unwrap();
    }

    #[test]
    fn stale_lock_is_reclaimed() {
        let path = tmp_lock("stale");
        let ghost = PidLock::acquire_as(&path, dead_pid()).unwrap();
        std::mem::forget(ghost); // simulate a crash: file stays, process gone
        let lock = PidLock::acquire(&path).unwrap();
        assert_eq!(PidLock::read(&path).unwrap().pid, std::process::id());
        drop(lock);
    }

    #[test]
    fn corrupt_lock_is_reclaimed() {
        let path = tmp_lock("corrupt");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "not json at all").unwrap();
        let _lock = PidLock::acquire(&path).unwrap();
        assert_eq!(PidLock::read(&path).unwrap().pid, std::process::id());
    }
}
