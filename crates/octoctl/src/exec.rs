//! Bounded, crash-safe execution of a [`MovePlan`].
//!
//! Every move runs the three backend steps in the fixed order
//! **copy → verify → delete**. The invariant the ordering buys: at any
//! interruption point — including SIGKILL — the payload has at least one
//! readable copy (the worst case is a verified duplicate on two tiers,
//! which the next cycle's copy step treats as already done). A failed
//! verify never deletes; a set cancel flag stops cleanly between steps.
//! Bandwidth bounding lives in the backend's copy loop, which paces
//! chunks against the configured bytes/sec budget.

use octo_common::{OctoError, StorageTier};
use octo_dfs::backend::StorageBackend;
use octo_policies::MovePlan;
use std::sync::atomic::{AtomicBool, Ordering};

/// Resolves a plan's tier label (`"MEM"`/`"SSD"`/`"HDD"`) back to a tier.
pub fn tier_by_label(label: &str) -> Option<StorageTier> {
    StorageTier::ALL.into_iter().find(|t| t.label() == label)
}

/// What happened to one planned move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveOutcome {
    /// The plan's 1-based sequence number.
    pub seq: usize,
    /// File path.
    pub path: String,
    /// `"moved"`, `"skipped"` or `"interrupted"`.
    pub status: &'static str,
    /// Failure detail for skips/interrupts, empty when moved.
    pub detail: String,
}

/// Execution summary of one plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Moves fully completed (copy, verify and delete all succeeded).
    pub moved: usize,
    /// Moves abandoned after an error (payload left untouched or
    /// duplicated, never lost).
    pub skipped: usize,
    /// Whether the cancel flag stopped execution early.
    pub interrupted: bool,
    /// Payload bytes of completed moves.
    pub bytes_moved: u64,
    /// Per-move detail, in plan order up to the interruption point.
    pub outcomes: Vec<MoveOutcome>,
}

/// Executes `plan` against `backend` until done or `cancel` is set.
pub fn execute_plan(
    backend: &mut dyn StorageBackend,
    plan: &MovePlan,
    cancel: &AtomicBool,
) -> ExecReport {
    let mut report = ExecReport::default();
    for mv in &plan.moves {
        if cancel.load(Ordering::SeqCst) {
            report.interrupted = true;
            break;
        }
        let outcome = |status, detail: String| MoveOutcome {
            seq: mv.seq,
            path: mv.path.clone(),
            status,
            detail,
        };
        let (Some(from), Some(to)) = (tier_by_label(&mv.from), tier_by_label(&mv.to)) else {
            report.skipped += 1;
            report.outcomes.push(outcome(
                "skipped",
                format!("unknown tier label {:?} -> {:?}", mv.from, mv.to),
            ));
            continue;
        };
        match backend.copy_file(&mv.path, from, to) {
            // An existing destination copy is the resume case: a prior
            // run crashed after copy; verify decides whether it counts.
            Ok(_) | Err(OctoError::AlreadyExists(_)) => {}
            Err(e) => {
                if cancel.load(Ordering::SeqCst) {
                    // The backend's copy loop saw the flag mid-transfer,
                    // cleaned up its temp file and bailed.
                    report.interrupted = true;
                    report.outcomes.push(outcome("interrupted", e.to_string()));
                    break;
                }
                report.skipped += 1;
                report
                    .outcomes
                    .push(outcome("skipped", format!("copy failed: {e}")));
                continue;
            }
        }
        if let Err(e) = backend.verify_copy(&mv.path, from, to) {
            report.skipped += 1;
            report.outcomes.push(outcome(
                "skipped",
                format!("verify failed, source kept: {e}"),
            ));
            continue;
        }
        if let Err(e) = backend.delete_replica(&mv.path, from) {
            report.skipped += 1;
            report.outcomes.push(outcome(
                "skipped",
                format!("delete failed, verified duplicate kept: {e}"),
            ));
            continue;
        }
        report.moved += 1;
        report.bytes_moved += mv.bytes;
        report.outcomes.push(outcome("moved", String::new()));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use octo_backend_fs::{FsBackend, FsBackendConfig};
    use octo_common::{ByteSize, PerTier, SimTime};
    use octo_policies::{plan_moves, PlannerConfig};
    use std::path::PathBuf;

    fn tmp_base(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("octo-exec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// An overfull MEM tier drains through a real plan-execute round trip.
    #[test]
    fn executes_a_real_plan_copy_verify_delete() {
        let base = tmp_base("roundtrip");
        let caps = PerTier::from_fn(|t| match t {
            octo_common::StorageTier::Memory => ByteSize::from_bytes(1000),
            _ => ByteSize::from_bytes(100_000),
        });
        let cfg = FsBackendConfig::under(&base, caps);
        for name in ["a.dat", "b.dat", "c.dat"] {
            std::fs::create_dir_all(cfg.roots.get(octo_common::StorageTier::Memory)).unwrap();
            std::fs::write(
                cfg.roots.get(octo_common::StorageTier::Memory).join(name),
                vec![0u8; 400],
            )
            .unwrap();
        }
        let mut be = FsBackend::open(cfg).unwrap();
        be.record_read("a.dat", SimTime::from_secs(10)).unwrap(); // keep a.dat warmest

        let plan = plan_moves(&be, &PlannerConfig::default()).unwrap();
        assert!(!plan.moves.is_empty(), "1200/1000 bytes must trigger moves");
        let cancel = AtomicBool::new(false);
        let report = execute_plan(&mut be, &plan, &cancel);
        assert_eq!(report.moved, plan.moves.len());
        assert_eq!(report.skipped, 0);
        assert!(!report.interrupted);
        assert_eq!(report.bytes_moved, plan.total_bytes());

        let mem = be.tier_status(octo_common::StorageTier::Memory).unwrap();
        assert!(
            mem.utilization() <= 0.85 + 1e-9,
            "drained to the stop threshold, got {}",
            mem.utilization()
        );
        // Every file still has exactly one readable copy.
        use octo_dfs::backend::StorageBackend as _;
        let files = be.list_files().unwrap();
        assert_eq!(files.len(), 3);
        assert!(files.iter().all(|f| f.tiers.len() == 1));
    }

    #[test]
    fn pre_set_cancel_flag_stops_before_any_move() {
        let base = tmp_base("cancel");
        let caps = PerTier::from_fn(|t| match t {
            octo_common::StorageTier::Memory => ByteSize::from_bytes(100),
            _ => ByteSize::from_bytes(100_000),
        });
        let cfg = FsBackendConfig::under(&base, caps);
        std::fs::create_dir_all(cfg.roots.get(octo_common::StorageTier::Memory)).unwrap();
        std::fs::write(
            cfg.roots.get(octo_common::StorageTier::Memory).join("f"),
            vec![0u8; 99],
        )
        .unwrap();
        let mut be = FsBackend::open(cfg).unwrap();
        let plan = plan_moves(&be, &PlannerConfig::default()).unwrap();
        assert!(!plan.moves.is_empty());
        let cancel = AtomicBool::new(true);
        let report = execute_plan(&mut be, &plan, &cancel);
        assert!(report.interrupted);
        assert_eq!(report.moved + report.skipped, 0);
    }

    #[test]
    fn bad_tier_label_is_skipped_not_fatal() {
        let base = tmp_base("badlabel");
        let cfg = FsBackendConfig::under(&base, PerTier::splat(ByteSize::from_bytes(100)));
        let mut be = FsBackend::open(cfg).unwrap();
        let mut plan = plan_moves(&be, &PlannerConfig::default()).unwrap();
        plan.moves.push(octo_policies::PlannedMove {
            seq: 1,
            path: "ghost".into(),
            from: "TAPE".into(),
            to: "HDD".into(),
            bytes: 1,
            heat: 0.0,
            band: "cold".into(),
            reason: "test".into(),
        });
        let report = execute_plan(&mut be, &plan, &AtomicBool::new(false));
        assert_eq!(report.skipped, 1);
        assert_eq!(report.outcomes[0].status, "skipped");
    }
}
