//! The `octoctl` JSON configuration file.
//!
//! One flat struct of primitives so the offline serde shim round-trips it
//! without attribute support; every field is required (run `octoctl init`
//! to generate a complete file). Paths derive from one base directory
//! using the conventional [`FsBackendConfig::under`] layout.

use octo_backend_fs::FsBackendConfig;
use octo_common::{ByteSize, OctoError, PerTier, Result, SimDuration, StorageTier};
use octo_dfs::HeatConfig;
use octo_policies::{PlanStrategy, PlannerConfig, TieringConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Everything `octoctl` needs: where the tiers live, how big they are, and
/// how to score/throttle moves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OctoctlConfig {
    /// Base directory: tier roots `mem/`, `ssd/`, `hdd/` and `state/`
    /// (sidecar, PID lock) live under it.
    pub base_dir: String,
    /// Declared capacity of the memory tier, bytes.
    pub mem_capacity_bytes: u64,
    /// Declared capacity of the SSD tier, bytes.
    pub ssd_capacity_bytes: u64,
    /// Declared capacity of the HDD tier, bytes.
    pub hdd_capacity_bytes: u64,
    /// Planner strategy name (`"watermark"`, `"hybrid"`, `"lru"`).
    pub strategy: String,
    /// Downgrades start above this utilization.
    pub start_threshold: f64,
    /// ... and stop below this one.
    pub stop_threshold: f64,
    /// Heat at or above which a file enters the hot band.
    pub watermark_hot: f64,
    /// Heat at or below which a file enters the cold band.
    pub watermark_cold: f64,
    /// Relative hysteresis width of the heat bands.
    pub watermark_hysteresis: f64,
    /// Heat half-life, milliseconds.
    pub heat_half_life_ms: u64,
    /// Heat added per read.
    pub heat_read_weight: f64,
    /// Heat granted at creation.
    pub heat_write_weight: f64,
    /// Cap on planned moves per cycle; `0` = unbounded.
    pub max_moves: u64,
    /// Copy bandwidth budget, bytes per second; `0` = unlimited.
    pub bandwidth_bytes_per_sec: u64,
    /// Daemon sleep between cycles, milliseconds.
    pub interval_ms: u64,
}

impl OctoctlConfig {
    /// A complete, working config rooted at `base` — what `octoctl init`
    /// writes. Capacities are deliberately tiny (a demo tree on a laptop),
    /// thresholds and heat parameters are the workspace defaults.
    pub fn example(base: &str) -> OctoctlConfig {
        let tiering = TieringConfig::default();
        let heat = HeatConfig::default();
        OctoctlConfig {
            base_dir: base.to_string(),
            mem_capacity_bytes: ByteSize::mb(8).as_bytes(),
            ssd_capacity_bytes: ByteSize::mb(32).as_bytes(),
            hdd_capacity_bytes: ByteSize::mb(128).as_bytes(),
            strategy: "watermark".to_string(),
            start_threshold: tiering.start_threshold,
            stop_threshold: tiering.stop_threshold,
            watermark_hot: tiering.watermark_hot,
            watermark_cold: tiering.watermark_cold,
            watermark_hysteresis: tiering.watermark_hysteresis,
            heat_half_life_ms: heat.half_life.as_millis(),
            heat_read_weight: heat.read_weight,
            heat_write_weight: heat.write_weight,
            max_moves: 0,
            bandwidth_bytes_per_sec: 0,
            interval_ms: 1000,
        }
    }

    /// Loads and validates a config file.
    pub fn load(path: &Path) -> Result<OctoctlConfig> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| OctoError::Config(format!("reading config {}: {e}", path.display())))?;
        let cfg: OctoctlConfig = serde_json::from_str(&text)
            .map_err(|e| OctoError::Config(format!("parsing config {}: {e}", path.display())))?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Field-level validation, mirroring `DfsConfig::validate` style.
    pub fn validate(&self) -> Result<()> {
        if self.base_dir.is_empty() {
            return Err(OctoError::Config("base_dir must not be empty".into()));
        }
        if self.strategy_enum().is_none() {
            return Err(OctoError::Config(format!(
                "unknown strategy {:?} (expected watermark, hybrid or lru)",
                self.strategy
            )));
        }
        for (name, cap) in [
            ("mem_capacity_bytes", self.mem_capacity_bytes),
            ("ssd_capacity_bytes", self.ssd_capacity_bytes),
            ("hdd_capacity_bytes", self.hdd_capacity_bytes),
        ] {
            if cap == 0 {
                return Err(OctoError::Config(format!("{name} must be positive")));
            }
        }
        for (name, v) in [
            ("start_threshold", self.start_threshold),
            ("stop_threshold", self.stop_threshold),
        ] {
            if !(v.is_finite() && 0.0 < v && v <= 1.0) {
                return Err(OctoError::Config(format!(
                    "{name} must be in (0, 1], got {v}"
                )));
            }
        }
        if self.stop_threshold > self.start_threshold {
            return Err(OctoError::Config(format!(
                "stop_threshold ({}) must not exceed start_threshold ({})",
                self.stop_threshold, self.start_threshold
            )));
        }
        for (name, v) in [
            ("watermark_hot", self.watermark_hot),
            ("watermark_cold", self.watermark_cold),
            ("watermark_hysteresis", self.watermark_hysteresis),
            ("heat_read_weight", self.heat_read_weight),
            ("heat_write_weight", self.heat_write_weight),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(OctoError::Config(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        if self.heat_half_life_ms == 0 {
            return Err(OctoError::Config(
                "heat_half_life_ms must be positive".into(),
            ));
        }
        Ok(())
    }

    fn strategy_enum(&self) -> Option<PlanStrategy> {
        PlanStrategy::by_name(&self.strategy)
    }

    /// The backend this config describes.
    pub fn backend_config(&self) -> FsBackendConfig {
        let caps = PerTier::from_fn(|t| match t {
            StorageTier::Memory => ByteSize::from_bytes(self.mem_capacity_bytes),
            StorageTier::Ssd => ByteSize::from_bytes(self.ssd_capacity_bytes),
            StorageTier::Hdd => ByteSize::from_bytes(self.hdd_capacity_bytes),
        });
        let mut be = FsBackendConfig::under(Path::new(&self.base_dir), caps);
        be.heat = self.heat_config();
        be.bandwidth_bytes_per_sec = self.bandwidth_bytes_per_sec;
        be
    }

    /// The heat-fold parameters this config describes.
    pub fn heat_config(&self) -> HeatConfig {
        HeatConfig {
            half_life: SimDuration::from_millis(self.heat_half_life_ms),
            read_weight: self.heat_read_weight,
            write_weight: self.heat_write_weight,
        }
    }

    /// The planner parameters this config describes.
    pub fn planner_config(&self) -> PlannerConfig {
        let tiering = TieringConfig {
            start_threshold: self.start_threshold,
            stop_threshold: self.stop_threshold,
            watermark_hot: self.watermark_hot,
            watermark_cold: self.watermark_cold,
            watermark_hysteresis: self.watermark_hysteresis,
            ..TieringConfig::default()
        };
        PlannerConfig {
            tiering,
            heat: self.heat_config(),
            strategy: self.strategy_enum().expect("validated strategy"),
            max_moves: self.max_moves as usize,
        }
    }

    /// Where the daemon's PID lock lives.
    pub fn lock_path(&self) -> PathBuf {
        Path::new(&self.base_dir).join("state").join("octoctl.pid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_round_trips_and_validates() {
        let cfg = OctoctlConfig::example("/tmp/octo-demo");
        cfg.validate().unwrap();
        let text = serde_json::to_string(&cfg).unwrap();
        let back: OctoctlConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.planner_config().strategy, PlanStrategy::Watermark);
        assert!(back.lock_path().ends_with("state/octoctl.pid"));
    }

    #[test]
    fn rejects_bad_fields() {
        let ok = OctoctlConfig::example("/tmp/x");
        for break_it in [
            (&|c: &mut OctoctlConfig| c.strategy = "xgb".into()) as &dyn Fn(&mut OctoctlConfig),
            &|c| c.mem_capacity_bytes = 0,
            &|c| c.start_threshold = f64::NAN,
            &|c| c.stop_threshold = 0.95, // above start
            &|c| c.watermark_hot = f64::INFINITY,
            &|c| c.heat_half_life_ms = 0,
            &|c| c.base_dir = String::new(),
        ] {
            let mut cfg = ok.clone();
            break_it(&mut cfg);
            assert_eq!(cfg.validate().unwrap_err().kind(), "config");
        }
    }
}
