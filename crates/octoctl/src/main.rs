//! `octoctl` — plan and execute tier moves over a storage backend.
//!
//! ```text
//! octoctl init   --base <dir> [--config <file>] [--bandwidth <bytes/sec>]
//! octoctl plan   --config <file> [--json] [--dry-run] [--execute]
//! octoctl daemon --config <file> [--max-cycles <n>] [--interval-ms <n>]
//! octoctl status --config <file>
//! octoctl record --config <file> --path <p> [--at-ms <n>]
//! ```
//!
//! `plan` is dry-run by default: it renders the deterministic move plan
//! (markdown, or exact plan JSON with `--json`) and touches nothing.
//! `--execute` performs the plan once under the PID lock. `daemon` loops
//! watch → plan → execute with structured JSON logs on stdout until
//! SIGTERM/SIGINT or `--max-cycles`.

use octo_backend_fs::FsBackend;
use octo_dfs::backend::StorageBackend;
use octo_policies::plan_moves;
use octoctl::{config::OctoctlConfig, exec, lock::PidLock, signals};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::Ordering;

const USAGE: &str = "usage: octoctl <init|plan|daemon|status|record> [options]
  init   --base <dir> [--config <file>] [--bandwidth <bytes/sec>]
  plan   --config <file> [--json] [--dry-run] [--execute]
  daemon --config <file> [--max-cycles <n>] [--interval-ms <n>]
  status --config <file>
  record --config <file> --path <p> [--at-ms <n>]";

/// Flags that consume a value; everything else starting with `--` is a
/// boolean switch.
const VALUE_FLAGS: &[&str] = &[
    "--base",
    "--config",
    "--bandwidth",
    "--max-cycles",
    "--interval-ms",
    "--path",
    "--at-ms",
];

struct Args {
    positional: Vec<String>,
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        values: BTreeMap::new(),
        switches: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if let Some(flag) = VALUE_FLAGS.iter().find(|f| *f == a) {
            let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            args.values.insert(flag.to_string(), v.clone());
        } else if a.starts_with("--") {
            args.switches.push(a.clone());
        } else {
            args.positional.push(a.clone());
        }
    }
    Ok(args)
}

impl Args {
    fn value(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    fn required(&self, flag: &str) -> Result<&str, String> {
        self.value(flag).ok_or_else(|| format!("missing {flag}"))
    }

    fn u64_value(&self, flag: &str, default: u64) -> Result<u64, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("{flag}: {e}")),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One structured log line: a JSON object of string fields on `stdout`,
/// rendered by hand (the offline serde shim prints maps as pair arrays).
fn jlog(event: &str, fields: &[(&str, String)]) {
    let mut line = format!("{{\"event\":\"{}\"", json_escape(event));
    for (k, v) in fields {
        line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    line.push('}');
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn load_config(args: &Args) -> Result<OctoctlConfig, String> {
    let path = args.required("--config")?;
    OctoctlConfig::load(Path::new(path)).map_err(|e| e.to_string())
}

fn open_backend(cfg: &OctoctlConfig) -> Result<FsBackend, String> {
    FsBackend::open(cfg.backend_config()).map_err(|e| e.to_string())
}

fn cmd_init(args: &Args) -> Result<(), String> {
    let base = args.required("--base")?;
    let mut cfg = OctoctlConfig::example(base);
    cfg.bandwidth_bytes_per_sec = args.u64_value("--bandwidth", 0)?;
    let text = serde_json::to_string(&cfg).map_err(|e| e.to_string())?;
    match args.value("--config") {
        Some(path) => std::fs::write(path, text + "\n").map_err(|e| format!("writing {path}: {e}")),
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let cfg = load_config(args)?;
    let execute = args.switch("--execute");
    if execute && args.switch("--dry-run") {
        return Err("--execute and --dry-run are mutually exclusive".into());
    }
    let mut backend = open_backend(&cfg)?;
    let plan = plan_moves(&backend, &cfg.planner_config()).map_err(|e| e.to_string())?;
    if args.switch("--json") {
        println!("{}", plan.to_json());
    } else {
        print!("{}", plan.to_markdown());
    }
    if !execute {
        return Ok(());
    }
    let _lock = PidLock::acquire(&cfg.lock_path()).map_err(|e| e.to_string())?;
    let cancel = signals::install();
    backend.set_cancel_flag(cancel.clone());
    let report = exec::execute_plan(&mut backend, &plan, &cancel);
    jlog(
        "plan_executed",
        &[
            ("moved", report.moved.to_string()),
            ("skipped", report.skipped.to_string()),
            ("interrupted", report.interrupted.to_string()),
            ("bytes_moved", report.bytes_moved.to_string()),
        ],
    );
    for o in &report.outcomes {
        if o.status != "moved" {
            jlog(
                "move_problem",
                &[
                    ("path", o.path.clone()),
                    ("status", o.status.to_string()),
                    ("detail", o.detail.clone()),
                ],
            );
        }
    }
    if report.interrupted {
        Err("execution interrupted by shutdown signal".into())
    } else {
        Ok(())
    }
}

fn cmd_daemon(args: &Args) -> Result<(), String> {
    let cfg = load_config(args)?;
    let max_cycles = args.u64_value("--max-cycles", 0)?;
    let interval_ms = args.u64_value("--interval-ms", cfg.interval_ms)?;
    let cancel = signals::install();
    let _lock = PidLock::acquire(&cfg.lock_path()).map_err(|e| e.to_string())?;
    let mut backend = open_backend(&cfg)?;
    backend.set_cancel_flag(cancel.clone());
    jlog(
        "daemon_start",
        &[
            ("pid", std::process::id().to_string()),
            ("base_dir", cfg.base_dir.clone()),
            ("strategy", cfg.strategy.clone()),
            ("interval_ms", interval_ms.to_string()),
        ],
    );
    let mut cycles: u64 = 0;
    let exit_reason = loop {
        if cancel.load(Ordering::SeqCst) {
            break "signal";
        }
        let plan = plan_moves(&backend, &cfg.planner_config()).map_err(|e| e.to_string())?;
        jlog(
            "cycle_planned",
            &[
                ("cycle", cycles.to_string()),
                ("files", plan.files.to_string()),
                ("moves", plan.moves.len().to_string()),
                ("bytes", plan.total_bytes().to_string()),
            ],
        );
        if !plan.moves.is_empty() {
            let report = exec::execute_plan(&mut backend, &plan, &cancel);
            for o in &report.outcomes {
                jlog(
                    "move_done",
                    &[
                        ("cycle", cycles.to_string()),
                        ("path", o.path.clone()),
                        ("status", o.status.to_string()),
                        ("detail", o.detail.clone()),
                    ],
                );
            }
            jlog(
                "cycle_executed",
                &[
                    ("cycle", cycles.to_string()),
                    ("moved", report.moved.to_string()),
                    ("skipped", report.skipped.to_string()),
                    ("interrupted", report.interrupted.to_string()),
                    ("bytes_moved", report.bytes_moved.to_string()),
                ],
            );
            if report.interrupted {
                break "signal";
            }
        }
        cycles += 1;
        if max_cycles > 0 && cycles >= max_cycles {
            break "max_cycles";
        }
        // Sleep in short slices so a signal ends the nap promptly.
        let mut slept = 0u64;
        while slept < interval_ms && !cancel.load(Ordering::SeqCst) {
            let slice = (interval_ms - slept).min(50);
            std::thread::sleep(std::time::Duration::from_millis(slice));
            slept += slice;
        }
    };
    jlog(
        "daemon_exit",
        &[
            ("reason", exit_reason.to_string()),
            ("cycles", cycles.to_string()),
        ],
    );
    Ok(())
}

fn cmd_status(args: &Args) -> Result<(), String> {
    let cfg = load_config(args)?;
    let backend = open_backend(&cfg)?;
    let files = backend.list_files().map_err(|e| e.to_string())?;
    let mut fields: Vec<(&str, String)> = vec![
        ("backend", backend.name().to_string()),
        ("clock_ms", backend.clock().as_millis().to_string()),
        ("files", files.len().to_string()),
    ];
    let labels = ["mem_used_bytes", "ssd_used_bytes", "hdd_used_bytes"];
    for (i, tier) in octo_common::StorageTier::ALL.into_iter().enumerate() {
        let st = backend.tier_status(tier).map_err(|e| e.to_string())?;
        fields.push((labels[i], st.used.as_bytes().to_string()));
    }
    jlog("status", &fields);
    Ok(())
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let cfg = load_config(args)?;
    let path = args.required("--path")?;
    let mut backend = open_backend(&cfg)?;
    // Default: one second past the backend clock, so repeated unstamped
    // records advance logical time monotonically and deterministically.
    let default_ms = backend.clock().as_millis() + 1000;
    let at_ms = args.u64_value("--at-ms", default_ms)?;
    backend
        .record_read(path, octo_common::SimTime::from_millis(at_ms))
        .map_err(|e| e.to_string())?;
    jlog(
        "recorded",
        &[("path", path.to_string()), ("at_ms", at_ms.to_string())],
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;
    match args.positional.first().map(String::as_str) {
        Some("init") => cmd_init(&args),
        Some("plan") => cmd_plan(&args),
        Some("daemon") => cmd_daemon(&args),
        Some("status") => cmd_status(&args),
        Some("record") => cmd_record(&args),
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("octoctl: {msg}");
            ExitCode::FAILURE
        }
    }
}
