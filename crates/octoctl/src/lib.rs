//! Library half of the `octoctl` serving front end (ROADMAP item 2).
//!
//! The binary (`src/main.rs`) is a thin argument parser over these
//! modules, which integration tests also exercise directly:
//!
//! * [`config`] — the flat JSON configuration file (`octoctl init`).
//! * [`lock`] — the daemon's `O_EXCL` PID lock with stale-PID reclaim.
//! * [`signals`] — SIGTERM/SIGINT to a shared [`AtomicBool`] shutdown
//!   flag, via the C `signal(2)` symbol (no external crate).
//! * [`exec`] — copy → verify → delete plan execution with cooperative
//!   cancellation; the crash-safety ordering is documented there.
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

pub mod config;
pub mod exec;
pub mod lock;
pub mod signals;

pub use config::OctoctlConfig;
pub use exec::{execute_plan, tier_by_label, ExecReport, MoveOutcome};
pub use lock::{LockInfo, PidLock};
