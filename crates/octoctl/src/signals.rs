//! SIGTERM/SIGINT → a shared shutdown flag, with no libc dependency.
//!
//! The handler does the only async-signal-safe thing possible: one atomic
//! store into a flag that the daemon loop, the executor and the backend's
//! copy loop all poll. Installed via the C `signal(2)` symbol directly so
//! the offline build needs no external crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_signal(_signum: i32) {
    if let Some(flag) = FLAG.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the handlers (idempotent) and returns the shutdown flag to
/// share with the executor and the backend's cancel hook.
pub fn install() -> Arc<AtomicBool> {
    let flag = Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))));
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
    flag
}

#[cfg(test)]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigterm_sets_the_flag() {
        let flag = install();
        flag.store(false, Ordering::SeqCst);
        unsafe {
            raise(SIGTERM);
        }
        assert!(flag.load(Ordering::SeqCst), "flag set by the handler");
        flag.store(false, Ordering::SeqCst); // leave global state clean
    }
}
