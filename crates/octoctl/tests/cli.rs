//! End-to-end tests of the `octoctl` binary over a real tempdir tree:
//! deterministic dry-run plans, bounded-bandwidth execution, the PID-lock
//! protocol (stale reclaim, concurrent-daemon mutual exclusion) and
//! graceful SIGTERM mid-move.

use octoctl::config::OctoctlConfig;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_octoctl")
}

/// A fresh base dir + written config file. `mem_cap` bounds the memory
/// tier; SSD/HDD are roomy so downgrades always have a destination.
fn setup(tag: &str, mem_cap: u64, bandwidth: u64) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("octoctl-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let mut cfg = OctoctlConfig::example(base.to_str().unwrap());
    cfg.mem_capacity_bytes = mem_cap;
    cfg.ssd_capacity_bytes = 100_000_000;
    cfg.hdd_capacity_bytes = 100_000_000;
    cfg.bandwidth_bytes_per_sec = bandwidth;
    cfg.interval_ms = 2000;
    let cfg_path = base.join("octoctl.json");
    std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
    (base, cfg_path)
}

fn seed(base: &Path, tier: &str, name: &str, bytes: usize) {
    let p = base.join(tier).join(name);
    std::fs::create_dir_all(p.parent().unwrap()).unwrap();
    std::fs::write(p, vec![0xA5u8; bytes]).unwrap();
}

fn octoctl(args: &[&str]) -> std::process::Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("octoctl runs")
}

fn stdout_of(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn init_writes_a_loadable_config() {
    let base = std::env::temp_dir().join(format!("octoctl-it-{}-init", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let cfg_path = base.join("cfg.json");
    let out = octoctl(&[
        "init",
        "--base",
        base.to_str().unwrap(),
        "--config",
        cfg_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let cfg = OctoctlConfig::load(&cfg_path).unwrap();
    assert_eq!(cfg.strategy, "watermark");
    // And status runs against the fresh (empty) tree.
    let out = octoctl(&["status", "--config", cfg_path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout_of(&out).contains("\"files\":\"0\""), "{out:?}");
}

#[test]
fn dry_run_plan_json_is_byte_identical_across_runs() {
    let (base, cfg) = setup("determinism", 1000, 0);
    for (name, sz) in [("a.dat", 400), ("b.dat", 400), ("c.dat", 400)] {
        seed(&base, "mem", name, sz);
    }
    let cfg_s = cfg.to_str().unwrap();
    // Heat history comes from recorded reads, not wall clock.
    for (path, at) in [("a.dat", "1000"), ("a.dat", "2000"), ("b.dat", "1500")] {
        let out = octoctl(&["record", "--config", cfg_s, "--path", path, "--at-ms", at]);
        assert!(out.status.success(), "{out:?}");
    }
    let first = octoctl(&["plan", "--config", cfg_s, "--dry-run", "--json"]);
    assert!(first.status.success(), "{first:?}");
    let plan = stdout_of(&first);
    assert!(plan.contains("\"moves\":["), "plan JSON rendered: {plan}");
    assert!(
        plan.contains("\"path\":\"c.dat\""),
        "the never-read file is the eviction candidate: {plan}"
    );
    for _ in 0..2 {
        let again = octoctl(&["plan", "--config", cfg_s, "--dry-run", "--json"]);
        assert!(again.status.success());
        assert_eq!(stdout_of(&again), plan, "byte-identical replans");
    }
    // Dry run touched nothing.
    assert!(base.join("mem/a.dat").exists());
    assert!(base.join("mem/c.dat").exists());
    // Markdown mode renders the same plan as a table.
    let md = octoctl(&["plan", "--config", cfg_s]);
    assert!(md.status.success());
    assert!(stdout_of(&md).contains("| MEM |"), "{md:?}");
}

#[test]
fn plan_execute_moves_under_a_tiny_bandwidth_budget() {
    // 2 × 400 B must leave MEM (1600/1000 over the start threshold, and
    // one eviction only reaches 1200 > the 850 stop line); at 800 B/s the
    // two copies are paced to ≥ ~1 s total.
    let (base, cfg) = setup("execute", 1000, 800);
    for name in ["a.dat", "b.dat", "c.dat", "d.dat"] {
        seed(&base, "mem", name, 400);
    }
    let cfg_s = cfg.to_str().unwrap();
    let start = Instant::now();
    let out = octoctl(&["plan", "--config", cfg_s, "--execute", "--json"]);
    assert!(out.status.success(), "{out:?}");
    let elapsed = start.elapsed();
    let stdout = stdout_of(&out);
    assert!(stdout.contains("\"event\":\"plan_executed\""), "{stdout}");
    assert!(stdout.contains("\"interrupted\":\"false\""), "{stdout}");
    assert!(
        elapsed >= Duration::from_millis(900),
        "bandwidth budget ignored: finished in {elapsed:?}"
    );
    // The two coldest files moved copy-verify-delete onto SSD; the
    // survivor stayed; nothing was lost and no temp files remain.
    let mem_files: Vec<_> = std::fs::read_dir(base.join("mem"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(mem_files.len(), 2, "two of four drained: {mem_files:?}");
    let ssd_files: Vec<_> = std::fs::read_dir(base.join("ssd"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(ssd_files.len(), 2, "{ssd_files:?}");
    assert!(ssd_files.iter().all(|f| !f.starts_with('.')));
    // Lock released: a follow-up execute acquires it cleanly.
    let again = octoctl(&["plan", "--config", cfg_s, "--execute", "--json"]);
    assert!(again.status.success(), "{again:?}");
}

#[test]
fn stale_lock_is_reclaimed_but_live_daemons_exclude_each_other() {
    let (base, cfg) = setup("locking", 1_000_000, 0);
    seed(&base, "mem", "f.dat", 100);
    let cfg_s = cfg.to_str().unwrap();
    let lock_path = base.join("state/octoctl.pid");

    // A lock left behind by a dead process is reclaimed silently.
    std::fs::create_dir_all(lock_path.parent().unwrap()).unwrap();
    std::fs::write(&lock_path, "{\"pid\":499999,\"acquired_unix_ms\":0}").unwrap();
    let out = octoctl(&["daemon", "--config", cfg_s, "--max-cycles", "1"]);
    assert!(out.status.success(), "stale lock must not block: {out:?}");
    assert!(!lock_path.exists(), "released on exit");

    // A *live* daemon excludes a second one for its whole lifetime.
    let first = Command::new(bin())
        .args(["daemon", "--config", cfg_s, "--max-cycles", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(500)); // cycle 0 done, napping
    let second = octoctl(&["daemon", "--config", cfg_s, "--max-cycles", "1"]);
    assert!(!second.status.success(), "second daemon must lose the lock");
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("holds the lock"),
        "{second:?}"
    );
    let first_out = first.wait_with_output().unwrap();
    assert!(first_out.status.success(), "{first_out:?}");
    let log = String::from_utf8_lossy(&first_out.stdout).into_owned();
    assert!(log.contains("\"event\":\"daemon_start\""), "{log}");
    assert!(log.contains("\"reason\":\"max_cycles\""), "{log}");
}

#[test]
fn sigterm_mid_move_leaves_a_readable_copy_and_exits_cleanly() {
    // One 512 KiB file over a 128 KiB/s budget: the first 256 KiB chunk
    // paces for ~2 s, so a SIGTERM at ~1 s lands mid-copy.
    let (base, cfg) = setup("sigterm", 100_000, 128 * 1024);
    seed(&base, "mem", "big.bin", 512 * 1024);
    let cfg_s = cfg.to_str().unwrap();
    let mut daemon = Command::new(bin())
        .args(["daemon", "--config", cfg_s, "--max-cycles", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(1000));
    let term = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());

    let deadline = Instant::now() + Duration::from_secs(10);
    let out = loop {
        match daemon.try_wait().unwrap() {
            Some(_) => break daemon.wait_with_output().unwrap(),
            None if Instant::now() > deadline => {
                daemon.kill().unwrap();
                panic!("daemon ignored SIGTERM");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    assert!(out.status.success(), "clean shutdown: {out:?}");
    let log = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(log.contains("\"reason\":\"signal\""), "{log}");

    // The invariant: the payload still has a readable copy (the source
    // was never deleted) and the interrupted copy left no temp file.
    assert!(base.join("mem/big.bin").exists(), "source intact");
    let ssd_leftovers: Vec<_> = std::fs::read_dir(base.join("ssd"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        ssd_leftovers.is_empty(),
        "no partial copy: {ssd_leftovers:?}"
    );
    assert!(!base.join("state/octoctl.pid").exists(), "lock released");
}
