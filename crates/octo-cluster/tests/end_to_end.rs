//! End-to-end simulation tests: every scenario runs a scaled-down workload
//! to completion, and the tiering scenarios behave qualitatively like the
//! paper says they should.

use octo_access::{FeatureConfig, LearnerConfig};
use octo_cluster::{run_dfsio, run_trace, DfsioConfig, Scenario, SimConfig};
use octo_common::{ByteSize, PerTier, SimDuration, StorageTier};
use octo_dfs::DfsConfig;
use octo_gbt::GbtParams;
use octo_workload::{generate, FaultConfig, FaultSchedule, Trace, WorkloadConfig};

/// A small FB-flavoured workload (fast enough for debug-mode tests).
fn small_trace(seed: u64) -> Trace {
    let cfg = WorkloadConfig {
        jobs: 120,
        duration: SimDuration::from_hours(2),
        ..WorkloadConfig::facebook()
    };
    generate(&cfg, seed)
}

/// A small cluster: 4 workers with scaled-down tiers so tiering pressure
/// actually happens at this workload size.
fn small_sim(scenario: Scenario) -> SimConfig {
    SimConfig {
        dfs: DfsConfig {
            workers: 4,
            tier_capacity: PerTier::from_fn(|t| match t {
                StorageTier::Memory => ByteSize::gb(2),
                StorageTier::Ssd => ByteSize::gb(24),
                StorageTier::Hdd => ByteSize::gb(200),
            }),
            ..DfsConfig::default()
        },
        learner: LearnerConfig {
            // Lighter trees keep debug-mode tests quick.
            gbt: GbtParams {
                rounds: 5,
                max_depth: 6,
                ..GbtParams::default()
            },
            features: FeatureConfig::default(),
            min_points: 40,
            buffer_max: 1500,
            ..LearnerConfig::default()
        },
        scenario,
        seed: 11,
        ..SimConfig::default()
    }
}

/// Every scenario survives a fault schedule: crashed workers lose their
/// tasks, reads fail over to surviving replicas, the Replication Monitor
/// re-replicates what the crashes destroyed, and the whole run stays
/// deterministic.
#[test]
fn fault_injected_runs_complete_heal_and_stay_deterministic() {
    let trace = small_trace(9);
    let faults = FaultSchedule::generate(&FaultConfig::default(), 4, 17);
    assert!(!faults.is_empty());
    let mk = || {
        let mut cfg = small_sim(Scenario::policy_pair("lru", "osa"));
        cfg.faults = faults.clone();
        cfg
    };
    let report = run_trace(mk(), &trace);

    assert_eq!(
        report.jobs.len(),
        trace.jobs.len(),
        "every job completes or fails definitively"
    );
    assert!(report.faults.crashes > 0, "the schedule crashed somebody");
    assert_eq!(
        report.faults.crashes, report.faults.recoveries,
        "generated schedules always heal"
    );
    assert!(
        report.faults.bytes_re_replicated > ByteSize::ZERO,
        "the repair planner re-protected the lost replicas"
    );
    assert!(
        report.faults.full_replication_at.is_some(),
        "the cluster healed back to full replication"
    );
    assert!(report.faults.time_to_full_replication().is_some());
    assert_eq!(
        report.faults.repair_debt_bytes,
        ByteSize::ZERO,
        "a run that quiesced back to full replication owes no repair debt"
    );

    // Same trace, same schedule, same seed: bit-identical outcome.
    let again = run_trace(mk(), &trace);
    assert_eq!(report, again, "fault runs must be deterministic");
}

/// A targeted mass crash: three of four workers die at the instant a job's
/// reads start. In-flight reads are cancelled and fail over, blocks with no
/// live replica park their tasks until the recovery, and every job still
/// finishes.
#[test]
fn mass_crash_interrupts_reads_and_recovery_unblocks_them() {
    use octo_common::NodeId;
    use octo_workload::{FaultEvent, FaultKind};

    let trace = small_trace(3);
    let crash_at = trace.jobs[0].submit; // submits pop before faults (FIFO)
    let recover_at = crash_at + SimDuration::from_mins(10);
    let mut events = Vec::new();
    for n in [1u32, 2, 3] {
        events.push(FaultEvent {
            at: crash_at,
            node: NodeId(n),
            kind: FaultKind::Crash,
        });
        events.push(FaultEvent {
            at: recover_at,
            node: NodeId(n),
            kind: FaultKind::Recover,
        });
    }
    let mut cfg = small_sim(Scenario::policy_pair("lru", "osa"));
    cfg.faults = FaultSchedule::from_events(events);
    let report = run_trace(cfg, &trace);

    assert_eq!(report.jobs.len(), trace.jobs.len(), "every job finishes");
    assert!(
        report.faults.failed_reads > 0,
        "the crash interrupted or blocked reads: {:?}",
        report.faults
    );
    assert_eq!(report.faults.failed_jobs, 0, "nothing was truly lost");
    assert_eq!(report.faults.lost_files, 0, "disk contents survived");
    assert!(!report.jobs.iter().any(|j| j.failed));
}

/// The availability clock never claims a heal that did not happen: when
/// nodes die for good and full redundancy cannot be restored,
/// `full_replication_at` (and so `time_to_full_replication()`) stays
/// `None` — for the replicated and the erasure-coded cold tier alike.
#[test]
fn unhealable_clusters_report_no_heal_time() {
    use octo_common::NodeId;
    use octo_workload::{FaultEvent, FaultKind};

    let trace = small_trace(3);
    // Well after the last job: the cluster is quiescent when the nodes die.
    let end = trace.jobs.iter().map(|j| j.submit).max().unwrap() + SimDuration::from_hours(1);
    let forever_down = |nodes: &[u32]| {
        FaultSchedule::from_events(
            nodes
                .iter()
                .map(|&n| FaultEvent {
                    at: end,
                    node: NodeId(n),
                    kind: FaultKind::Crash,
                })
                .collect(),
        )
    };

    // Replication: 2 of 4 workers gone for good — a 3-replica target cannot
    // be met on 2 surviving nodes, so the degraded set never empties.
    let mut cfg = small_sim(Scenario::policy_pair("lru", "osa"));
    cfg.faults = forever_down(&[1, 2]);
    let report = run_trace(cfg, &trace);
    assert!(report.faults.last_fault_at.is_some());
    assert_eq!(report.faults.full_replication_at, None);
    assert_eq!(report.faults.time_to_full_replication(), None);
    assert!(
        report.faults.repair_debt_bytes > ByteSize::ZERO,
        "a run ending mid-repair owes the missing replicas as debt"
    );

    // Erasure coding: EC(4,2) stripes span 6 of 8 workers, so three
    // permanently-dead nodes leave some stripe below `k` live shards —
    // unreconstructable, and the clock must keep saying so.
    let mut cfg = small_sim(Scenario::policy_pair("lru", "osa"));
    cfg.dfs.workers = 8;
    cfg.dfs.tier_capacity =
        PerTier::from_fn(|t| ByteSize::from_bytes(cfg.dfs.tier_capacity.get(t).as_bytes() / 2));
    *cfg.dfs.redundancy.get_mut(StorageTier::Hdd) =
        octo_dfs::RedundancyMode::Erasure { k: 4, m: 2 };
    // Low downgrade thresholds so the LRU policy actually stripes cold
    // files into the EC tier before the crash.
    cfg.tiering.start_threshold = 0.30;
    cfg.tiering.stop_threshold = 0.25;
    cfg.faults = forever_down(&[1, 2, 3]);
    let report = run_trace(cfg, &trace);
    assert!(report.faults.last_fault_at.is_some());
    assert_eq!(report.faults.full_replication_at, None);
    assert_eq!(report.faults.time_to_full_replication(), None);
    assert!(
        report.faults.repair_debt_bytes > ByteSize::ZERO,
        "unreconstructable stripes still owe their dead shards as debt"
    );
}

/// Faults also work without any tiering policy installed (plain OctopusFS):
/// repair is driven by the monitor tick alone.
#[test]
fn faults_heal_without_tiering_policies() {
    let trace = small_trace(5);
    let mut cfg = small_sim(Scenario::OctopusFs);
    cfg.faults = FaultSchedule::generate(&FaultConfig::default(), 4, 23);
    let report = run_trace(cfg, &trace);
    assert_eq!(report.jobs.len(), trace.jobs.len());
    assert!(report.faults.crashes > 0);
    assert!(report.faults.bytes_re_replicated > ByteSize::ZERO);
}

#[test]
fn all_scenarios_run_to_completion() {
    let trace = small_trace(3);
    for scenario in [
        Scenario::Hdfs,
        Scenario::HdfsCache,
        Scenario::OctopusFs,
        Scenario::policy_pair("lru", "osa"),
        Scenario::policy_pair("xgb", "xgb"),
    ] {
        let label = scenario.label();
        let report = run_trace(small_sim(scenario), &trace);
        assert_eq!(
            report.jobs.len(),
            trace.jobs.len(),
            "{label}: every job must finish"
        );
        assert!(
            report.total_read() > ByteSize::ZERO,
            "{label}: reads happened"
        );
        for j in &report.jobs {
            assert!(j.finish >= j.submit, "{label}: causality");
            assert!(!j.tasks.is_empty(), "{label}: jobs have tasks");
        }
    }
}

#[test]
fn hdfs_reads_everything_from_hdd() {
    let trace = small_trace(5);
    let report = run_trace(small_sim(Scenario::Hdfs), &trace);
    assert_eq!(report.read_from_memory(), ByteSize::ZERO);
    assert_eq!(
        report.bytes_read_by_tier[StorageTier::Ssd.index()],
        ByteSize::ZERO
    );
    assert_eq!(report.total_read(), report.bytes_read_by_tier[2]);
}

#[test]
fn octopusfs_serves_some_reads_from_memory() {
    let trace = small_trace(5);
    let report = run_trace(small_sim(Scenario::OctopusFs), &trace);
    let mem_frac = report.read_from_memory().fraction_of(report.total_read());
    assert!(
        mem_frac > 0.10,
        "tiered placement should serve reads from memory: {mem_frac:.3}"
    );
}

#[test]
fn tiering_policies_beat_plain_octopusfs_on_memory_reads() {
    let trace = small_trace(5);
    let plain = run_trace(small_sim(Scenario::OctopusFs), &trace);
    let managed = run_trace(small_sim(Scenario::policy_pair("lru", "osa")), &trace);
    let plain_frac = plain.read_from_memory().fraction_of(plain.total_read());
    let managed_frac = managed.read_from_memory().fraction_of(managed.total_read());
    assert!(
        managed_frac > plain_frac,
        "LRU-OSA should raise memory reads: {managed_frac:.3} vs {plain_frac:.3}"
    );
    // And movement must actually have happened.
    assert!(managed.movement.transfers_completed > 0);
}

#[test]
fn tiering_improves_completion_time_and_efficiency() {
    let trace = small_trace(9);
    let hdfs = run_trace(small_sim(Scenario::Hdfs), &trace);
    let xgb = run_trace(small_sim(Scenario::policy_pair("xgb", "xgb")), &trace);
    assert!(
        xgb.mean_completion_secs() < hdfs.mean_completion_secs(),
        "Octopus++ must beat HDFS on completion time: {:.2}s vs {:.2}s",
        xgb.mean_completion_secs(),
        hdfs.mean_completion_secs()
    );
    assert!(
        xgb.total_task_seconds() < hdfs.total_task_seconds(),
        "Octopus++ must beat HDFS on efficiency: {:.0} vs {:.0}",
        xgb.total_task_seconds(),
        hdfs.total_task_seconds()
    );
}

#[test]
fn determinism_same_seed_same_report() {
    let trace = small_trace(13);
    let a = run_trace(small_sim(Scenario::policy_pair("lru", "osa")), &trace);
    let b = run_trace(small_sim(Scenario::policy_pair("lru", "osa")), &trace);
    assert_eq!(a, b, "identical config must replay identically");
}

#[test]
fn dfsio_write_then_read() {
    let cfg = DfsioConfig {
        scenario: Scenario::OctopusFs,
        dfs: DfsConfig {
            workers: 4,
            tier_capacity: PerTier::from_fn(|t| match t {
                StorageTier::Memory => ByteSize::gb(1),
                StorageTier::Ssd => ByteSize::gb(8),
                StorageTier::Hdd => ByteSize::gb(64),
            }),
            ..DfsConfig::default()
        },
        total: ByteSize::gb(8),
        file_size: ByteSize::mb(512),
        window: ByteSize::gb(1),
        ..DfsioConfig::default()
    };
    let report = run_dfsio(&cfg);
    assert!(report.write.len() >= 4, "write series: {:?}", report.write);
    assert!(report.read.len() >= 4, "read series: {:?}", report.read);
    for (_, mbps) in report.write.iter().chain(&report.read) {
        assert!(*mbps > 0.0 && mbps.is_finite());
    }
    // Memory-tier placement makes early reads much faster than HDD-only.
    let hdd_cfg = DfsioConfig {
        scenario: Scenario::Hdfs,
        ..cfg
    };
    let hdd = run_dfsio(&hdd_cfg);
    let first_read_tiered = report.read.first().unwrap().1;
    let first_read_hdd = hdd.read.first().unwrap().1;
    assert!(
        first_read_tiered > first_read_hdd * 1.5,
        "tiered read {first_read_tiered:.0} MB/s vs HDD {first_read_hdd:.0} MB/s"
    );
}

#[test]
fn event_traces_replay_including_deletes_and_long_horizons() {
    use octo_cluster::run_event_trace;
    use octo_common::SimTime;
    use octo_workload::{CompileConfig, EventTrace, TraceEvent, TraceOp};

    // A multi-day audit log: events far past the old absolute 48h runaway
    // guard must replay (the guard is relative to the trace end), and a
    // mid-trace delete of an input must be honoured.
    let mb = |n| ByteSize::mb(n);
    let day = 24 * 3600;
    let ev = |at_s: u64, op, path: &str, bytes| TraceEvent {
        at: SimTime::from_secs(at_s),
        client: 0,
        op,
        path: path.to_string(),
        bytes,
    };
    let events = EventTrace::new(
        "audit",
        vec![
            ev(0, TraceOp::Write, "/a", mb(64)),
            ev(60, TraceOp::Write, "/b", mb(128)),
            ev(600, TraceOp::Read, "/a", mb(64)),
            ev(1200, TraceOp::Delete, "/a", ByteSize::ZERO),
            // Two days later the second file is still being read.
            ev(2 * day + 600, TraceOp::Read, "/b", mb(128)),
            ev(2 * day + 1200, TraceOp::Open, "/b", mb(128)),
        ],
    );
    let report = run_event_trace(
        small_sim(Scenario::policy_pair("lru", "osa")),
        &events,
        &CompileConfig::default(),
    )
    .expect("valid trace replays");
    assert_eq!(report.workload, "audit");
    assert_eq!(report.jobs.len(), 3);
    assert!(report.jobs.iter().all(|j| !j.failed));

    // Reads of the deleted path are rejected at compile time, not at
    // simulation time.
    let mut bad = events.clone();
    bad.events.push(ev(1800, TraceOp::Read, "/a", mb(64)));
    assert!(run_event_trace(small_sim(Scenario::Hdfs), &bad, &CompileConfig::default()).is_err());
}
