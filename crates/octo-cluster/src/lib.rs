//! Compute-cluster simulation over the tiered DFS.
//!
//! This crate is the paper's "12-node cluster": a deterministic
//! discrete-event simulator that replays synthetic workloads against
//! [`octo_dfs::TieredDfs`] under one of the four evaluation [`scenario`]s
//! (HDFS / HDFS+Cache / OctopusFS / Octopus++), with MapReduce-style slot
//! scheduling, bandwidth-accurate I/O through the `octo-simkit` flow model,
//! and the policy engine wired to the access stream.
//!
//! Three drivers exist:
//!
//! * [`sim::ClusterSim`] — job workloads (everything in §7.2–§7.5),
//!   usually through the [`run_trace`] convenience wrapper;
//! * [`sim::run_event_trace`] — the same simulator fed from an event-level
//!   access trace (`octo_workload::EventTrace`), compiled to a job stream
//!   first; explicit input deletions in the trace are honoured mid-run;
//! * [`dfsio::run_dfsio`] — the DFSIO write/read throughput study (§3.1,
//!   Figure 2).

pub mod dfsio;
pub mod resources;
pub mod runstats;
pub mod scenario;
pub mod sim;

pub use dfsio::{run_dfsio, DfsioConfig, DfsioReport};
pub use resources::ResourceMap;
pub use runstats::{FaultSummary, JobResult, RunReport, TaskStat};
pub use scenario::Scenario;
pub use sim::{run_event_trace, run_trace, ClusterSim, SimConfig};
