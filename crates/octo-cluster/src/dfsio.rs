//! The DFSIO-style throughput benchmark (paper §3.1, Figure 2).
//!
//! Writes `total` bytes as fixed-size files with one concurrent writer per
//! node, then reads every file back with one concurrent reader per node.
//! Reports the average per-node throughput in windows along the x-axis
//! ("Data Written/Read (GB)"), which is exactly how Figure 2 plots the
//! memory-exhaustion cliff of static placement and its absence under
//! Octopus++'s proactive downgrades.

use crate::resources::ResourceMap;
use crate::scenario::Scenario;
use octo_access::LearnerConfig;
use octo_common::{ByteSize, FileId, FlowId, IdGen, NodeId, SimDuration, SimTime, StorageTier};
use octo_dfs::{DfsConfig, TieredDfs, TransferId};
use octo_policies::TieringConfig;
use octo_simkit::{EventQueue, FlowModel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// DFSIO parameters (defaults follow §3.1: 84 GB over 11 workers).
#[derive(Debug, Clone)]
pub struct DfsioConfig {
    /// File system variant under test.
    pub scenario: Scenario,
    /// Cluster hardware.
    pub dfs: DfsConfig,
    /// Policy thresholds (Octopus++ only).
    pub tiering: TieringConfig,
    /// Learner configuration (XGB policies only).
    pub learner: LearnerConfig,
    /// Total bytes to write and then read back.
    pub total: ByteSize,
    /// Size of each DFSIO file.
    pub file_size: ByteSize,
    /// Throughput-series bucket width.
    pub window: ByteSize,
    /// Seed for policy-internal sampling.
    pub seed: u64,
}

impl Default for DfsioConfig {
    fn default() -> Self {
        DfsioConfig {
            scenario: Scenario::OctopusFs,
            dfs: DfsConfig::default(),
            tiering: TieringConfig::default(),
            learner: LearnerConfig::default(),
            total: ByteSize::gb(84),
            file_size: ByteSize::gb(1),
            window: ByteSize::gb(6),
            seed: 7,
        }
    }
}

/// One throughput series: `(cumulative GB, avg MB/s per node)` points.
pub type Series = Vec<(f64, f64)>;

/// The benchmark outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfsioReport {
    /// Scenario label.
    pub scenario: String,
    /// Windowed write throughput.
    pub write: Series,
    /// Windowed read throughput.
    pub read: Series,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    FlowTick { version: u64 },
    Monitor,
}

#[derive(Debug, Clone, Copy)]
enum Purpose {
    WriteBlock { worker: usize },
    ReadBlock { worker: usize },
    Transfer { id: TransferId },
}

struct Worker {
    node: NodeId,
    /// Remaining blocks of the current file, newest first.
    current: Vec<(octo_common::BlockId, ByteSize)>,
    file: Option<FileId>,
    reading_idx: usize,
}

/// Runs the benchmark to completion.
pub fn run_dfsio(cfg: &DfsioConfig) -> DfsioReport {
    let mut dfs = TieredDfs::new(cfg.dfs.clone()).expect("valid config");
    cfg.scenario.configure_dfs(&mut dfs);
    let mut engine = cfg
        .scenario
        .build_engine(&cfg.tiering, &cfg.learner, cfg.seed);
    let mut flows = FlowModel::new();
    let resources = ResourceMap::new(&cfg.dfs, &mut flows);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut flow_ids = IdGen::new();
    let mut purposes: HashMap<FlowId, Purpose> = HashMap::new();
    let mut transfer_blocks: HashMap<TransferId, usize> = HashMap::new();

    let n_workers = cfg.dfs.workers as usize;
    let mut workers: Vec<Worker> = (0..n_workers)
        .map(|i| Worker {
            node: NodeId(i as u32),
            current: Vec::new(),
            file: None,
            reading_idx: 0,
        })
        .collect();

    let mut files_written: Vec<FileId> = Vec::new();
    let mut next_file = 0usize;
    let total_files = (cfg.total.as_bytes() / cfg.file_size.as_bytes()) as usize;

    // Throughput bookkeeping: `(cumulative bytes, time)` checkpoints per
    // file completion, post-processed into fixed-width windows at the end
    // (simultaneous completions would otherwise make zero-length windows).
    let mut write_ckpts: Vec<(ByteSize, SimTime)> = Vec::new();
    let mut read_ckpts: Vec<(ByteSize, SimTime)> = Vec::new();
    let mut bytes_done = ByteSize::ZERO;
    let mut reading_phase = false;
    let mut read_phase_start = SimTime::ZERO;
    let mut read_done = ByteSize::ZERO;

    // --- helpers as closures are painful with borrows; use a macro-ish fn style.
    #[allow(clippy::too_many_arguments)] // free fn threading disjoint borrows
    fn start_block_write(
        dfs: &mut TieredDfs,
        flows: &mut FlowModel,
        resources: &ResourceMap,
        purposes: &mut HashMap<FlowId, Purpose>,
        flow_ids: &mut IdGen,
        worker: &mut Worker,
        widx: usize,
        now: SimTime,
    ) {
        if let Some((block, size)) = worker.current.pop() {
            let replicas: Vec<(NodeId, StorageTier)> = dfs
                .block_info(block)
                .replicas()
                .iter()
                .map(|r| (r.node, r.tier))
                .collect();
            let id = FlowId(flow_ids.next_raw());
            flows.start_flow(now, id, size, resources.write_pipeline_path(&replicas));
            purposes.insert(id, Purpose::WriteBlock { worker: widx });
        }
    }

    #[allow(clippy::too_many_arguments)] // free fn threading disjoint borrows
    fn begin_next_file(
        dfs: &mut TieredDfs,
        flows: &mut FlowModel,
        resources: &ResourceMap,
        purposes: &mut HashMap<FlowId, Purpose>,
        flow_ids: &mut IdGen,
        worker: &mut Worker,
        widx: usize,
        next_file: &mut usize,
        total_files: usize,
        file_size: ByteSize,
        now: SimTime,
    ) -> bool {
        if *next_file >= total_files {
            return false;
        }
        let path = format!("/dfsio/f{:04}", *next_file);
        *next_file += 1;
        match dfs.create_file(&path, file_size, now) {
            Ok(plan) => {
                worker.file = Some(plan.file);
                worker.current = plan
                    .blocks
                    .iter()
                    .rev()
                    .map(|b| (b.block, b.size))
                    .collect();
                start_block_write(dfs, flows, resources, purposes, flow_ids, worker, widx, now);
                true
            }
            Err(_) => false, // cluster full; writer retires
        }
    }

    // Kick off: every worker starts writing a file at t=0.
    for (w, worker) in workers.iter_mut().enumerate() {
        begin_next_file(
            &mut dfs,
            &mut flows,
            &resources,
            &mut purposes,
            &mut flow_ids,
            worker,
            w,
            &mut next_file,
            total_files,
            cfg.file_size,
            SimTime::ZERO,
        );
    }
    queue.schedule(SimTime::from_secs(30), Event::Monitor);
    if let Some((t, v)) = flows.next_completion(SimTime::ZERO) {
        queue.schedule(t, Event::FlowTick { version: v });
    }

    let mut active = true;
    while let Some((now, ev)) = queue.pop() {
        match ev {
            Event::Monitor => {
                engine.tick(&dfs, now);
                for tier in [StorageTier::Memory, StorageTier::Ssd] {
                    let planned = engine.run_downgrade(&mut dfs, tier, now);
                    for id in planned {
                        schedule_transfer(
                            &mut dfs,
                            &mut flows,
                            &resources,
                            &mut purposes,
                            &mut flow_ids,
                            &mut transfer_blocks,
                            id,
                            now,
                        );
                    }
                }
                if active {
                    queue.schedule(now + SimDuration::from_secs(30), Event::Monitor);
                }
            }
            Event::FlowTick { version } => {
                if version != flows.version() {
                    continue;
                }
                for fid in flows.collect_completed(now) {
                    let purpose = purposes.remove(&fid).expect("known flow");
                    match purpose {
                        Purpose::WriteBlock { worker: widx } => {
                            let mut worker = std::mem::replace(
                                &mut workers[widx],
                                Worker {
                                    node: NodeId(widx as u32),
                                    current: Vec::new(),
                                    file: None,
                                    reading_idx: 0,
                                },
                            );
                            if worker.current.is_empty() {
                                // File complete.
                                let file = worker.file.take().expect("writing");
                                dfs.commit_file(file, now).expect("fresh file");
                                engine.notify_created(&dfs, file, now);
                                // HDFS cache directives: cache new files in
                                // memory as they land, until memory fills.
                                if cfg.scenario.caches_on_access() {
                                    if let Ok(id) = dfs.plan_cache_copy(file, StorageTier::Memory) {
                                        schedule_transfer(
                                            &mut dfs,
                                            &mut flows,
                                            &resources,
                                            &mut purposes,
                                            &mut flow_ids,
                                            &mut transfer_blocks,
                                            id,
                                            now,
                                        );
                                    }
                                }
                                files_written.push(file);
                                bytes_done += cfg.file_size;
                                write_ckpts.push((bytes_done, now));
                                for tier in [StorageTier::Memory, StorageTier::Ssd] {
                                    let planned = engine.run_downgrade(&mut dfs, tier, now);
                                    for id in planned {
                                        schedule_transfer(
                                            &mut dfs,
                                            &mut flows,
                                            &resources,
                                            &mut purposes,
                                            &mut flow_ids,
                                            &mut transfer_blocks,
                                            id,
                                            now,
                                        );
                                    }
                                }
                                begin_next_file(
                                    &mut dfs,
                                    &mut flows,
                                    &resources,
                                    &mut purposes,
                                    &mut flow_ids,
                                    &mut worker,
                                    widx,
                                    &mut next_file,
                                    total_files,
                                    cfg.file_size,
                                    now,
                                );
                            } else {
                                start_block_write(
                                    &mut dfs,
                                    &mut flows,
                                    &resources,
                                    &mut purposes,
                                    &mut flow_ids,
                                    &mut worker,
                                    widx,
                                    now,
                                );
                            }
                            workers[widx] = worker;
                        }
                        Purpose::ReadBlock { worker: widx } => {
                            let mut worker = std::mem::replace(
                                &mut workers[widx],
                                Worker {
                                    node: NodeId(widx as u32),
                                    current: Vec::new(),
                                    file: None,
                                    reading_idx: 0,
                                },
                            );
                            if worker.current.is_empty() {
                                read_done += cfg.file_size;
                                read_ckpts.push((read_done, now));
                                start_next_read(
                                    &mut dfs,
                                    &mut flows,
                                    &resources,
                                    &mut purposes,
                                    &mut flow_ids,
                                    &mut worker,
                                    widx,
                                    &files_written,
                                    n_workers,
                                    now,
                                );
                            } else {
                                start_block_read(
                                    &mut dfs,
                                    &mut flows,
                                    &resources,
                                    &mut purposes,
                                    &mut flow_ids,
                                    &mut worker,
                                    widx,
                                    now,
                                );
                            }
                            workers[widx] = worker;
                        }
                        Purpose::Transfer { id } => {
                            let remaining =
                                transfer_blocks.get_mut(&id).expect("transfer in flight");
                            *remaining -= 1;
                            if *remaining == 0 {
                                transfer_blocks.remove(&id);
                                dfs.complete_transfer(id).expect("all blocks landed");
                            }
                        }
                    }
                }
            }
        }

        // Phase change: writes finished, start reading.
        if !reading_phase
            && next_file >= total_files
            && workers
                .iter()
                .all(|w| w.file.is_none() && w.current.is_empty())
            && transfer_blocks.is_empty()
        {
            reading_phase = true;
            read_phase_start = queue.now();
            for (widx, worker) in workers.iter_mut().enumerate() {
                worker.reading_idx = widx;
                start_next_read(
                    &mut dfs,
                    &mut flows,
                    &resources,
                    &mut purposes,
                    &mut flow_ids,
                    worker,
                    widx,
                    &files_written,
                    n_workers,
                    queue.now(),
                );
            }
        }
        if reading_phase && flows.active_flows() == 0 && transfer_blocks.is_empty() {
            active = false; // everything drained; Monitor stops rescheduling
        }
        if let Some((t, v)) = flows.next_completion(queue.now()) {
            queue.schedule(t, Event::FlowTick { version: v });
        }
        if !active && flows.active_flows() == 0 {
            break;
        }
    }

    DfsioReport {
        scenario: cfg.scenario.label(),
        write: windowed_series(&write_ckpts, cfg.window, SimTime::ZERO, n_workers),
        read: windowed_series(&read_ckpts, cfg.window, read_phase_start, n_workers),
    }
}

/// Converts completion checkpoints into `(cumulative GB, MB/s per node)`
/// windows of at least `window` bytes; windows whose wall-clock span rounds
/// to zero are merged into the next one.
fn windowed_series(
    ckpts: &[(ByteSize, SimTime)],
    window: ByteSize,
    start: SimTime,
    n_workers: usize,
) -> Series {
    let mut out = Series::new();
    let mut last_bytes = ByteSize::ZERO;
    let mut last_time = start;
    let mut next_boundary = window;
    for &(bytes, t) in ckpts {
        if bytes < next_boundary {
            continue;
        }
        let dt = t.duration_since(last_time).as_secs_f64();
        if dt > 0.0 {
            let mb = bytes.saturating_sub(last_bytes).as_mb_f64();
            out.push((bytes.as_gb_f64(), mb / dt / n_workers as f64));
        }
        last_bytes = bytes;
        last_time = t;
        while next_boundary <= bytes {
            next_boundary += window;
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn schedule_transfer(
    dfs: &mut TieredDfs,
    flows: &mut FlowModel,
    resources: &ResourceMap,
    purposes: &mut HashMap<FlowId, Purpose>,
    flow_ids: &mut IdGen,
    transfer_blocks: &mut HashMap<TransferId, usize>,
    id: TransferId,
    now: SimTime,
) {
    let transfer = dfs.transfer(id).expect("just planned").clone();
    let moving: Vec<_> = transfer
        .blocks
        .iter()
        .filter(|bt| bt.action.moves_bytes())
        .collect();
    if moving.is_empty() {
        dfs.complete_transfer(id).expect("drop-only");
        return;
    }
    transfer_blocks.insert(id, moving.len());
    for bt in moving {
        let src = bt.action.source();
        let dst = bt.action.destination().expect("moving action");
        let fid = FlowId(flow_ids.next_raw());
        flows.start_flow(now, fid, bt.size, resources.transfer_path(src, dst));
        purposes.insert(fid, Purpose::Transfer { id });
    }
}

#[allow(clippy::too_many_arguments)]
fn start_next_read(
    dfs: &mut TieredDfs,
    flows: &mut FlowModel,
    resources: &ResourceMap,
    purposes: &mut HashMap<FlowId, Purpose>,
    flow_ids: &mut IdGen,
    worker: &mut Worker,
    widx: usize,
    files: &[FileId],
    stride: usize,
    now: SimTime,
) {
    if worker.reading_idx >= files.len() {
        worker.file = None;
        return;
    }
    let file = files[worker.reading_idx];
    worker.reading_idx += stride;
    worker.file = Some(file);
    dfs.record_access(file, now).expect("committed file");
    let blocks = dfs.file_meta(file).expect("live").blocks.clone();
    worker.current = blocks
        .iter()
        .rev()
        .map(|b| (*b, dfs.block_info(*b).size))
        .collect();
    start_block_read(dfs, flows, resources, purposes, flow_ids, worker, widx, now);
}

#[allow(clippy::too_many_arguments)]
fn start_block_read(
    dfs: &mut TieredDfs,
    flows: &mut FlowModel,
    resources: &ResourceMap,
    purposes: &mut HashMap<FlowId, Purpose>,
    flow_ids: &mut IdGen,
    worker: &mut Worker,
    widx: usize,
    now: SimTime,
) {
    if let Some((block, size)) = worker.current.pop() {
        // DFSIO clients pick the *fastest* reachable replica: a remote
        // memory copy (NIC-capped) beats a local spinning disk. Ties break
        // toward local, then lower node id.
        let nic = dfs.config().nic_bandwidth_mbps;
        let src = dfs
            .block_info(block)
            .replicas()
            .iter()
            .max_by(|a, b| {
                let eff = |r: &&octo_dfs::Replica| {
                    let bw = dfs.config().tier_bandwidth_mbps.get(r.tier);
                    if r.node == worker.node {
                        *bw
                    } else {
                        bw.min(nic)
                    }
                };
                eff(a)
                    .total_cmp(&eff(b))
                    .then_with(|| (a.node == worker.node).cmp(&(b.node == worker.node)))
                    .then(b.node.cmp(&a.node))
            })
            .map(|r| (r.node, r.tier))
            .expect("committed block");
        let id = FlowId(flow_ids.next_raw());
        flows.start_flow(now, id, size, resources.read_path(src, worker.node));
        purposes.insert(id, Purpose::ReadBlock { worker: widx });
    }
}
