//! The four evaluation scenarios of the paper (§3.1, §7.2).

use octo_access::LearnerConfig;
use octo_common::StorageTier;
use octo_dfs::TieredDfs;
use octo_policies::{downgrade_policy, upgrade_policy, TieringConfig, TieringEngine};
use serde::{Deserialize, Serialize};

/// Which file system / policy combination a run simulates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Original HDFS: 3 replicas, all on HDDs, no movement.
    Hdfs,
    /// HDFS with the centralized cache: HDD replicas plus a cache copy in
    /// memory on first access; once memory fills, caching requests fail and
    /// nothing is ever uncached (§1).
    HdfsCache,
    /// OctopusFS: tiered multi-objective placement, no movement afterwards.
    OctopusFs,
    /// Octopus++: OctopusFS placement plus automated downgrade/upgrade
    /// policies (names resolved by `octo_policies::registry`; `None`
    /// disables that side, as the §7.3/§7.4 isolation experiments do).
    OctopusPlusPlus {
        /// Downgrade policy name, e.g. `"lru"`, `"xgb"`.
        downgrade: Option<String>,
        /// Upgrade policy name, e.g. `"osa"`, `"xgb"`.
        upgrade: Option<String>,
        /// Force all initial placements onto HDD (used by the §7.4
        /// upgrade-only comparison).
        initial_hdd_only: bool,
    },
}

impl Scenario {
    /// The paper's shorthand for a policy pair, e.g. `"LRU-OSA"`.
    pub fn policy_pair(down: &str, up: &str) -> Scenario {
        Scenario::OctopusPlusPlus {
            downgrade: Some(down.to_string()),
            upgrade: Some(up.to_string()),
            initial_hdd_only: false,
        }
    }

    /// Downgrade-only variant (§7.3).
    pub fn downgrade_only(down: &str) -> Scenario {
        Scenario::OctopusPlusPlus {
            downgrade: Some(down.to_string()),
            upgrade: None,
            initial_hdd_only: false,
        }
    }

    /// Upgrade-only variant with HDD initial placement (§7.4).
    pub fn upgrade_only(up: &str) -> Scenario {
        Scenario::OctopusPlusPlus {
            downgrade: None,
            upgrade: Some(up.to_string()),
            initial_hdd_only: true,
        }
    }

    /// Display label used in report tables.
    pub fn label(&self) -> String {
        match self {
            Scenario::Hdfs => "HDFS".to_string(),
            Scenario::HdfsCache => "HDFS+Cache".to_string(),
            Scenario::OctopusFs => "OctopusFS".to_string(),
            Scenario::OctopusPlusPlus {
                downgrade, upgrade, ..
            } => match (downgrade, upgrade) {
                (Some(d), Some(u)) => format!("{}-{}", d.to_uppercase(), u.to_uppercase()),
                (Some(d), None) => format!("{}(down)", d.to_uppercase()),
                (None, Some(u)) => format!("{}(up)", u.to_uppercase()),
                (None, None) => "Octopus++(none)".to_string(),
            },
        }
    }

    /// True if reads should trigger HDFS-cache-style copy-on-access.
    pub fn caches_on_access(&self) -> bool {
        matches!(self, Scenario::HdfsCache)
    }

    /// Applies the scenario's placement restrictions to a fresh DFS.
    pub fn configure_dfs(&self, dfs: &mut TieredDfs) {
        match self {
            Scenario::Hdfs | Scenario::HdfsCache => {
                dfs.placement_mut()
                    .restrict_initial_tiers(&[StorageTier::Hdd]);
            }
            Scenario::OctopusFs => {}
            Scenario::OctopusPlusPlus {
                initial_hdd_only, ..
            } => {
                if *initial_hdd_only {
                    dfs.placement_mut()
                        .restrict_initial_tiers(&[StorageTier::Hdd]);
                }
            }
        }
    }

    /// Builds the tiering engine this scenario runs with.
    pub fn build_engine(
        &self,
        tiering: &TieringConfig,
        learner: &LearnerConfig,
        seed: u64,
    ) -> TieringEngine {
        match self {
            Scenario::Hdfs | Scenario::HdfsCache | Scenario::OctopusFs => TieringEngine::disabled(),
            Scenario::OctopusPlusPlus {
                downgrade, upgrade, ..
            } => {
                let down = downgrade
                    .as_deref()
                    .and_then(|n| downgrade_policy(n, tiering, learner, seed ^ 0xD0));
                let up = upgrade
                    .as_deref()
                    .and_then(|n| upgrade_policy(n, tiering, learner, seed ^ 0x09));
                TieringEngine::new(down, up)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Scenario::Hdfs.label(), "HDFS");
        assert_eq!(Scenario::policy_pair("lru", "osa").label(), "LRU-OSA");
        assert_eq!(Scenario::downgrade_only("exd").label(), "EXD(down)");
        assert_eq!(Scenario::upgrade_only("xgb").label(), "XGB(up)");
    }

    #[test]
    fn engines_match_scenarios() {
        let t = TieringConfig::default();
        let l = LearnerConfig::default();
        assert!(!Scenario::Hdfs.build_engine(&t, &l, 1).has_downgrade());
        let e = Scenario::policy_pair("xgb", "xgb").build_engine(&t, &l, 1);
        assert!(e.has_downgrade() && e.has_upgrade());
        let e = Scenario::upgrade_only("osa").build_engine(&t, &l, 1);
        assert!(!e.has_downgrade() && e.has_upgrade());
    }

    #[test]
    fn only_hdfs_cache_caches_on_access() {
        assert!(Scenario::HdfsCache.caches_on_access());
        assert!(!Scenario::Hdfs.caches_on_access());
        assert!(!Scenario::policy_pair("lru", "osa").caches_on_access());
    }
}
