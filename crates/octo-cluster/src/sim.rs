//! The discrete-event cluster simulator.
//!
//! Replays a [`Trace`] against a [`TieredDfs`] under one of the four
//! [`Scenario`]s, with MapReduce-style execution. Traces come from the
//! SWIM-style generator (`octo_workload::generate`), or from event-level
//! access logs compiled down to the same job stream — [`run_event_trace`]
//! is the one-call entry point for the latter:
//!
//! * Each job spawns one map task per input block; tasks occupy node slots
//!   (locality-first FIFO scheduling, deliberately **tier-unaware** — a
//!   task lands on any node with a local replica, which reproduces the
//!   paper's HR-by-access vs HR-by-location gap).
//! * A task reads its block (a bandwidth-model flow from the chosen
//!   replica), computes (`overhead + cpu_ms_per_mb × MB`), then releases
//!   its slot; when all tasks finish the job writes its replicated output
//!   through pipeline flows and completes.
//! * File accesses drive the upgrade policy (before the read starts);
//!   commits and transfer completions drive the downgrade trigger; a
//!   periodic monitor tick feeds the ML policies training samples and runs
//!   the proactive checks.
//! * An optional [`FaultSchedule`] injects node crashes, recoveries, and
//!   permanent disk losses: crashes cancel the transfers and reads they
//!   interrupt, tasks re-run elsewhere, and the Replication Monitor's
//!   repair planner re-replicates under-replicated files with bounded
//!   bandwidth per monitor epoch.
//!
//! Two deliberate fault-model simplifications: output-write pipelines are
//! not interrupted by a crash — the replica landing on the dead node is
//! marked dead at crash time and the committed file is re-protected by the
//! repair planner, approximating HDFS pipeline recovery at zero extra
//! bandwidth cost; and repair never *trims*, so a dead replica that
//! returns after its re-replication landed leaves the block
//! over-replicated (visible in `replication_report`, as in HDFS before
//! excess-replica pruning).
//!
//! Everything is deterministic for a fixed `(trace, config)` pair — fault
//! schedules included.

use crate::resources::ResourceMap;
use crate::runstats::{FaultSummary, JobResult, RunReport, TaskStat};
use crate::scenario::Scenario;
use octo_access::LearnerConfig;
use octo_common::{ByteSize, FileId, FlowId, IdGen, NodeId, SimDuration, SimTime, StorageTier};
use octo_dfs::{
    BlockCache, BlockKey, CacheConfig, CacheLevel, DfsConfig, EpochPool, RepairPlanner, TieredDfs,
    TransferId,
};
use octo_policies::{TieringConfig, TieringEngine};
use octo_simkit::{EventQueue, FlowModel};
use octo_workload::{CompileConfig, EventTrace, FaultKind, FaultSchedule, Trace, TraceError};
use std::collections::{HashMap, HashSet, VecDeque};

/// Simulation parameters (hardware config + execution model constants).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Cluster hardware / DFS parameters.
    pub dfs: DfsConfig,
    /// Policy thresholds.
    pub tiering: TieringConfig,
    /// ML learner configuration for the XGB policies.
    pub learner: LearnerConfig,
    /// Which file system variant to simulate.
    pub scenario: Scenario,
    /// Concurrent task slots per worker node.
    pub slots_per_node: u32,
    /// Fixed task startup overhead.
    pub task_overhead: SimDuration,
    /// CPU milliseconds per input megabyte.
    pub cpu_ms_per_mb: f64,
    /// Lifetime of temporary (non-durable) job outputs.
    pub output_ttl: SimDuration,
    /// Replication-monitor / policy-tick interval.
    pub monitor_interval: SimDuration,
    /// Seed for policy-internal sampling.
    pub seed: u64,
    /// Fault schedule to inject (empty = no faults, no repair: behaviour is
    /// bit-identical to a build without fault support).
    pub faults: FaultSchedule,
    /// Byte budget per monitor epoch for repair re-replication.
    pub repair_bandwidth: ByteSize,
    /// Read-amplification factor for *degraded* erasure-coded reads — a
    /// read that must decode around a missing data shard pulls `k` shards
    /// and reconstructs, so its flow carries `penalty × block_size` bytes.
    /// Healthy stripes and replicated blocks never pay it.
    pub ec_degraded_read_penalty: f64,
    /// Worker threads for the per-shard epoch fan-out (policy candidate
    /// scans and repair-candidate collection). 1 = the serial code path;
    /// any value produces byte-identical simulations — the parallel engine
    /// merges per-shard results in shard order.
    pub epoch_threads: usize,
    /// Block-cache configuration. Disabled by default: a run with
    /// `CacheConfig::default()` is bit-identical to one built before the
    /// cache existed. When enabled, task reads consult the sharded L1/L2
    /// cache first — a hit short-circuits flow scheduling entirely and is
    /// served at the level's fixed service time; a miss falls through to
    /// the tiered (or EC-degraded) read and fills the cache on completion.
    pub cache: CacheConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dfs: DfsConfig::default(),
            tiering: TieringConfig::default(),
            learner: LearnerConfig::default(),
            scenario: Scenario::OctopusFs,
            slots_per_node: 8,
            task_overhead: SimDuration::from_millis(1500),
            cpu_ms_per_mb: 18.0,
            output_ttl: SimDuration::from_mins(20),
            monitor_interval: SimDuration::from_secs(60),
            seed: 42,
            faults: FaultSchedule::none(),
            repair_bandwidth: ByteSize::gb(2),
            ec_degraded_read_penalty: 1.5,
            epoch_threads: 1,
            cache: CacheConfig::default(),
        }
    }
}

#[derive(Debug, Clone)]
enum Event {
    Ingest(usize),
    Submit(usize),
    CpuDone {
        job: usize,
        task: usize,
        node: NodeId,
        /// The node's crash epoch when the task started computing: a
        /// mismatch at delivery means the worker died underneath it.
        epoch: u64,
    },
    FlowTick {
        version: u64,
    },
    Monitor,
    DeleteTemp(FileId),
    /// Explicit deletion of a trace input dataset (index into
    /// `Trace::files`), scheduled from `Trace::deletes`.
    DeleteInput(usize),
    Fault(usize),
}

#[derive(Debug, Clone, Copy)]
enum FlowPurpose {
    Read {
        job: usize,
        task: usize,
        src: (NodeId, StorageTier),
        dst: NodeId,
        had_mem: bool,
        start: SimTime,
    },
    OutputBlock {
        job: usize,
    },
    TransferBlock {
        id: TransferId,
    },
}

#[derive(Debug)]
struct TaskRt {
    block: octo_common::BlockId,
    size: ByteSize,
    /// Positional cache key of the block (stable across replica movement,
    /// striping, and repair — unlike any physical location).
    key: BlockKey,
}

/// `(bytes, source device, destination device)` of one in-flight block move.
type MovingBlock = (ByteSize, (NodeId, StorageTier), (NodeId, StorageTier));

/// `(flow, job, task, source device, reader node)` of a read a fault kills.
type DeadRead = (FlowId, usize, usize, (NodeId, StorageTier), NodeId);

#[derive(Debug)]
struct JobRt {
    spec: usize,
    tasks: Vec<TaskRt>,
    done: usize,
    output_file: Option<FileId>,
    output_flows: usize,
    output_write_start: SimTime,
    completion: SimTime,
    stats: Vec<TaskStat>,
    finished: bool,
    /// Abandoned because an input block was lost for good.
    failed: bool,
}

/// The simulator. Construct with [`ClusterSim::new`], run with
/// [`ClusterSim::run`].
pub struct ClusterSim<'t> {
    cfg: SimConfig,
    trace: &'t Trace,
    dfs: TieredDfs,
    engine: TieringEngine,
    queue: EventQueue<Event>,
    flows: FlowModel,
    resources: ResourceMap,
    flow_ids: IdGen,
    flow_purpose: HashMap<FlowId, FlowPurpose>,
    transfer_blocks: HashMap<TransferId, usize>,
    free_slots: Vec<u32>,
    pending: VecDeque<(usize, usize)>,
    jobs: Vec<JobRt>,
    file_map: Vec<Option<FileId>>,
    jobs_remaining: usize,
    bytes_read_by_tier: [ByteSize; 3],
    /// Per-node crash counter; `CpuDone` events carry the epoch they were
    /// scheduled under so work lost to a crash is detected and re-run.
    node_epoch: Vec<u64>,
    /// Tasks with no readable replica right now, parked until a recovery
    /// or repair brings one back.
    blocked: Vec<(usize, usize)>,
    /// Per-node count of not-yet-fired Recover events: zero means a block
    /// whose only copies are dead there is gone for good.
    pending_recoveries: Vec<usize>,
    /// True while a Monitor event sits in the queue (fault handlers re-arm
    /// the monitor without double-scheduling it).
    monitor_armed: bool,
    /// Flow-model version the last scheduled completion wakeup was computed
    /// under. Completion scheduling is batched per version: events that do
    /// not touch the flow model skip the O(flows) next-completion scan, and
    /// the already-scheduled wakeup (same version, earlier or equal time)
    /// still fires — behaviour is bit-identical because a same-version
    /// duplicate wakeup never completes anything the first one does not.
    scheduled_flow_version: Option<u64>,
    repair: RepairPlanner,
    fstats: FaultSummary,
    /// Worker pool for the per-shard epoch fan-out ([`SimConfig::epoch_threads`]).
    pool: EpochPool,
    /// The sharded L1/L2 block cache, present only when
    /// [`SimConfig::cache`] is enabled. Touched exclusively from the serial
    /// event loop, so determinism at any `epoch_threads` width is free.
    cache: Option<BlockCache>,
}

impl<'t> ClusterSim<'t> {
    /// Builds a simulator over `trace`.
    pub fn new(cfg: SimConfig, trace: &'t Trace) -> Self {
        // Reject bad cache parameters at sim start — a >1 or non-finite
        // compression ratio or a zero-byte per-shard capacity would only
        // surface later as silently wrong L2 charges.
        cfg.cache.validate().expect("valid cache config");
        let mut dfs = TieredDfs::new(cfg.dfs.clone()).expect("valid DFS config");
        cfg.scenario.configure_dfs(&mut dfs);
        let engine = cfg
            .scenario
            .build_engine(&cfg.tiering, &cfg.learner, cfg.seed);
        let mut flows = FlowModel::new();
        let resources = ResourceMap::new(&cfg.dfs, &mut flows);
        let mut queue = EventQueue::new();

        for (i, f) in trace.files.iter().enumerate() {
            queue.schedule(f.created, Event::Ingest(i));
        }
        for (i, j) in trace.jobs.iter().enumerate() {
            queue.schedule(j.submit, Event::Submit(i));
        }
        // Scheduled after the submit loop so a same-instant job still sees
        // the file (the event queue is FIFO for simultaneous events).
        for d in &trace.deletes {
            queue.schedule(d.at, Event::DeleteInput(d.file));
        }
        for (i, ev) in cfg.faults.events().iter().enumerate() {
            queue.schedule(ev.at, Event::Fault(i));
        }
        queue.schedule(SimTime::ZERO + cfg.monitor_interval, Event::Monitor);

        let workers = cfg.dfs.workers as usize;
        let pending_recoveries = (0..workers)
            .map(|n| cfg.faults.recoveries_for(NodeId(n as u32)))
            .collect();
        ClusterSim {
            free_slots: vec![cfg.slots_per_node; workers],
            jobs_remaining: trace.jobs.len(),
            file_map: vec![None; trace.files.len()],
            jobs: Vec::with_capacity(trace.jobs.len()),
            node_epoch: vec![0; workers],
            blocked: Vec::new(),
            pending_recoveries,
            monitor_armed: true,
            scheduled_flow_version: None,
            repair: RepairPlanner::new(cfg.repair_bandwidth),
            fstats: FaultSummary::default(),
            pool: EpochPool::new(cfg.epoch_threads),
            cache: cfg
                .cache
                .enabled
                .then(|| BlockCache::new(cfg.cache.clone())),
            cfg,
            trace,
            dfs,
            engine,
            queue,
            flows,
            resources,
            flow_ids: IdGen::new(),
            flow_purpose: HashMap::new(),
            transfer_blocks: HashMap::new(),
            pending: VecDeque::new(),
            bytes_read_by_tier: [ByteSize::ZERO; 3],
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> RunReport {
        // Runaway guard: every externally-scheduled event (ingests, job
        // submissions, input deletions, faults) is known up front, so if
        // the clock gets 48 h past the last of them, internal event
        // scheduling has gone into a loop. Relative to the trace end, not
        // absolute, so long audit-log traces replay fine.
        let input_end = self
            .trace
            .files
            .iter()
            .map(|f| f.created)
            .chain(self.trace.jobs.iter().map(|j| j.submit))
            .chain(self.trace.deletes.iter().map(|d| d.at))
            .chain(self.cfg.faults.events().iter().map(|e| e.at))
            .max()
            .unwrap_or(SimTime::ZERO);
        let horizon = input_end + SimDuration::from_hours(48);
        while let Some((now, ev)) = self.queue.pop() {
            assert!(now < horizon, "simulation ran away past {horizon}");
            self.handle(ev, now);
            self.pump();
        }
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                debug_assert!(j.finished, "job {} never finished", j.spec);
                let spec = &self.trace.jobs[j.spec];
                JobResult {
                    bin: spec.bin,
                    submit: spec.submit,
                    finish: j.completion,
                    input_bytes: self.trace.files[spec.input].size,
                    output_bytes: spec.output_size,
                    tasks: j.stats.clone(),
                    // A failed job never wrote output: its completion is
                    // the failure instant, not a write duration.
                    output_write_secs: if j.failed {
                        0.0
                    } else {
                        j.completion
                            .duration_since(j.output_write_start)
                            .as_secs_f64()
                    },
                    failed: j.failed,
                }
            })
            .collect();
        let movement = *self.dfs.movement_stats();
        self.fstats.bytes_re_replicated = movement.bytes_re_replicated();
        self.fstats.bytes_reconstructed = movement.bytes_reconstructed();
        self.fstats.stripes_rebuilt = self.dfs.blocks().stripes_rebuilt();
        self.fstats.repairs_completed = movement.repairs_completed;
        // Walks the incrementally-maintained degraded set (every lost block
        // — replica-less and, for striped blocks, below `k` present shards
        // — is deficient), not the whole namespace.
        self.fstats.lost_files = self.dfs.lost_files().count() as u64;
        self.fstats.repair_debt_bytes = self.dfs.repair_debt_bytes();
        RunReport {
            scenario: self.cfg.scenario.label(),
            workload: self.trace.kind.label().to_string(),
            jobs,
            movement,
            sim_end: self.queue.now(),
            bytes_read_by_tier: self.bytes_read_by_tier,
            faults: self.fstats,
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event, now: SimTime) {
        match ev {
            Event::Ingest(i) => self.handle_ingest(i, now),
            Event::Submit(i) => self.handle_submit(i, now),
            Event::CpuDone {
                job,
                task,
                node,
                epoch,
            } => self.handle_cpu_done(job, task, node, epoch, now),
            Event::FlowTick { version } => self.handle_flow_tick(version, now),
            Event::Monitor => self.handle_monitor(now),
            Event::DeleteTemp(file) => self.handle_delete_temp(file, now),
            Event::DeleteInput(idx) => self.handle_delete_input(idx, now),
            Event::Fault(i) => self.handle_fault(i, now),
        }
    }

    fn handle_ingest(&mut self, idx: usize, now: SimTime) {
        let spec = &self.trace.files[idx];
        // Ingestion is modelled as an instant commit: space accounting is
        // what matters for tiering decisions; ingest bandwidth is not part
        // of any reported metric.
        match self.dfs.create_file(&spec.path, spec.size, now) {
            Ok(plan) => {
                self.dfs.commit_file(plan.file, now).expect("fresh file");
                self.file_map[idx] = Some(plan.file);
                self.engine.notify_created(&self.dfs, plan.file, now);
                // HDFS cache directives: new files get cached on ingest
                // until memory fills (no automatic uncaching ever).
                if self.cfg.scenario.caches_on_access() {
                    if let Ok(id) = self.dfs.plan_cache_copy(plan.file, StorageTier::Memory) {
                        self.execute_transfers(vec![id], now);
                    }
                }
                self.check_downgrades(now);
            }
            Err(_) => {
                // Cluster out of space: the dataset never materializes and
                // jobs reading it will be skipped (counted as failed).
            }
        }
    }

    fn handle_submit(&mut self, idx: usize, now: SimTime) {
        let spec = &self.trace.jobs[idx];
        let Some(file) = self.file_map[spec.input] else {
            // Input never ingested (out of capacity): job cannot run.
            self.jobs_remaining -= 1;
            return;
        };
        // Record the access and let policies react *before* the read (§6).
        self.dfs.record_access(file, now).expect("committed input");
        self.engine.notify_accessed(&self.dfs, file, now);
        if self.cfg.scenario.caches_on_access()
            && !self.dfs.file_fully_on_tier(file, StorageTier::Memory)
        {
            if let Ok(id) = self.dfs.plan_cache_copy(file, StorageTier::Memory) {
                self.execute_transfers(vec![id], now);
            }
        }
        let planned = self.engine.run_upgrade(&mut self.dfs, Some(file), now);
        self.execute_transfers(planned, now);

        // One map task per block.
        let tasks: Vec<TaskRt> = self
            .dfs
            .file_meta(file)
            .expect("live input")
            .blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| TaskRt {
                block: b,
                size: self.dfs.block_info(b).size,
                key: BlockKey::new(file, i as u32),
            })
            .collect();
        let job_idx = self.jobs.len();
        let n_tasks = tasks.len();
        self.jobs.push(JobRt {
            spec: idx,
            tasks,
            done: 0,
            output_file: None,
            output_flows: 0,
            output_write_start: now,
            completion: now,
            stats: Vec::with_capacity(n_tasks),
            finished: false,
            failed: false,
        });
        for t in 0..n_tasks {
            self.pending.push_back((job_idx, t));
        }
        self.schedule_tasks(now);
    }

    /// Locality-first FIFO assignment of pending tasks to free slots.
    fn schedule_tasks(&mut self, now: SimTime) {
        loop {
            let mut assigned = false;
            for node_i in 0..self.free_slots.len() {
                if self.free_slots[node_i] == 0 || self.pending.is_empty() {
                    continue;
                }
                let node = NodeId(node_i as u32);
                // Prefer a task with a live replica on this node (any tier
                // — the scheduler is tier-unaware), else the oldest task.
                let pos = self
                    .pending
                    .iter()
                    .position(|(j, t)| {
                        let block = self.jobs[*j].tasks[*t].block;
                        self.dfs
                            .block_info(block)
                            .replicas()
                            .iter()
                            .any(|r| r.node == node && !r.dead)
                    })
                    .unwrap_or(0);
                let (job, task) = self.pending.remove(pos).expect("non-empty");
                self.free_slots[node_i] -= 1;
                self.start_task_read(job, task, node, now);
                assigned = true;
            }
            if !assigned {
                break;
            }
        }
    }

    fn start_task_read(&mut self, job: usize, task: usize, node: NodeId, now: SimTime) {
        if self.jobs[job].finished {
            // The job failed while this task waited for a slot.
            self.free_slots[node.index()] += 1;
            return;
        }
        let block = self.jobs[job].tasks[task].block;
        let size = self.jobs[job].tasks[task].size;
        // The block cache sits in front of replica selection entirely: a
        // hit is served at the level's service time with no flow, no device
        // I/O, and no dependence on replica health — cached payloads keep
        // serving even while every DFS copy is dead (the cache is *not* a
        // replica, though: repair and loss accounting never count it).
        if let Some(cache) = self.cache.as_mut() {
            let key = self.jobs[job].tasks[task].key;
            if let Some(level) = cache.lookup(key, size) {
                self.finish_cached_read(job, task, node, level, size, now);
                return;
            }
        }
        let info = self.dfs.block_info(block);
        // Best reachable live replica: local first, then fastest tier.
        let src = info
            .replicas()
            .iter()
            .filter(|r| !r.dead)
            .max_by_key(|r| (r.node == node, r.tier.rank(), std::cmp::Reverse(r.node)))
            .map(|r| (r.node, r.tier));
        let Some(src) = src else {
            // No live replica. Erasure-coded blocks can still serve the read
            // by decoding the stripe from any `k` live shards; the flow is
            // anchored at the best surviving shard and, when a *data* shard
            // is among the missing, carries the degraded-read amplification.
            if let Some((src, degraded)) = self.stripe_read_source(block, node) {
                let flow_bytes = if degraded {
                    self.fstats.reads_degraded_ec += 1;
                    amplified_read_bytes(size, self.cfg.ec_degraded_read_penalty)
                } else {
                    size
                };
                self.dfs.io_started(src.0, src.1);
                let id = FlowId(self.flow_ids.next_raw());
                let path = self.resources.read_path(src, node);
                self.flows.start_flow(now, id, flow_bytes, path);
                self.flow_purpose.insert(
                    id,
                    FlowPurpose::Read {
                        job,
                        task,
                        src,
                        dst: node,
                        had_mem: false,
                        start: now,
                    },
                );
                return;
            }
            // No readable copy right now: park the task if a recovery can
            // bring one back, abandon the job otherwise.
            self.free_slots[node.index()] += 1;
            self.fstats.failed_reads += 1;
            if self.block_recoverable(block) {
                self.blocked.push((job, task));
            } else {
                self.fail_job(job, now);
            }
            return;
        };
        let had_mem = info
            .replicas()
            .iter()
            .any(|r| r.tier == StorageTier::Memory && !r.dead);
        self.dfs.io_started(src.0, src.1);
        let id = FlowId(self.flow_ids.next_raw());
        let path = self.resources.read_path(src, node);
        self.flows.start_flow(now, id, size, path);
        self.flow_purpose.insert(
            id,
            FlowPurpose::Read {
                job,
                task,
                src,
                dst: node,
                had_mem,
                start: now,
            },
        );
    }

    /// Completes a task read served by the block cache: no flow, no device
    /// I/O — the read costs the level's fixed service time, then the task
    /// computes as usual. L1 hits report as memory-tier reads, L2 hits as
    /// SSD-tier reads, so hit-ratio metrics see the cache's effect.
    fn finish_cached_read(
        &mut self,
        job: usize,
        task: usize,
        node: NodeId,
        level: CacheLevel,
        size: ByteSize,
        now: SimTime,
    ) {
        let (tier, had_mem) = match level {
            CacheLevel::L1 => (StorageTier::Memory, true),
            CacheLevel::L2 => (StorageTier::Ssd, false),
        };
        let svc = self.cfg.cache.service_time(level, size);
        let cpu = self.cfg.task_overhead
            + SimDuration::from_millis((self.cfg.cpu_ms_per_mb * size.as_mb_f64()) as u64);
        self.bytes_read_by_tier[tier.index()] += size;
        self.jobs[job].stats.push(TaskStat {
            read_tier: tier,
            remote: false,
            bytes: size,
            had_memory_replica: had_mem,
            read_secs: svc.as_secs_f64(),
            cpu_secs: cpu.as_secs_f64(),
        });
        // The epoch stamp keeps cache-served tasks crash-safe exactly like
        // flow-served ones: if `node` dies before this fires, the stale
        // epoch re-queues the task elsewhere.
        self.queue.schedule(
            now + svc + cpu,
            Event::CpuDone {
                job,
                task,
                node,
                epoch: self.node_epoch[node.index()],
            },
        );
    }

    fn handle_flow_tick(&mut self, version: u64, now: SimTime) {
        if version != self.flows.version() {
            return; // stale completion prediction
        }
        let done = self.flows.collect_completed(now);
        for id in done {
            let purpose = self
                .flow_purpose
                .remove(&id)
                .expect("every flow has a purpose");
            match purpose {
                FlowPurpose::Read {
                    job,
                    task,
                    src,
                    dst,
                    had_mem,
                    start,
                } => self.finish_task_read(job, task, src, dst, had_mem, start, now),
                FlowPurpose::OutputBlock { job } => self.finish_output_block(job, now),
                FlowPurpose::TransferBlock { id } => self.finish_transfer_block(id, now),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_task_read(
        &mut self,
        job: usize,
        task: usize,
        src: (NodeId, StorageTier),
        dst: NodeId,
        had_mem: bool,
        start: SimTime,
        now: SimTime,
    ) {
        self.dfs.io_finished(src.0, src.1);
        if self.jobs[job].finished {
            // The job failed while this read ran: release the slot only.
            self.free_slots[dst.index()] += 1;
            self.schedule_tasks(now);
            return;
        }
        let size = self.jobs[job].tasks[task].size;
        // Miss fill: the block just streamed past the reader, so cache it.
        // Degraded EC reads fill too — that is where the cache pays most,
        // since every subsequent hit skips the decode amplification.
        if let Some(cache) = self.cache.as_mut() {
            cache.insert(self.jobs[job].tasks[task].key, size);
        }
        let read_secs = now.duration_since(start).as_secs_f64();
        let cpu = self.cfg.task_overhead
            + SimDuration::from_millis((self.cfg.cpu_ms_per_mb * size.as_mb_f64()) as u64);
        self.bytes_read_by_tier[src.1.index()] += size;
        self.jobs[job].stats.push(TaskStat {
            read_tier: src.1,
            remote: src.0 != dst,
            bytes: size,
            had_memory_replica: had_mem,
            read_secs,
            cpu_secs: cpu.as_secs_f64(),
        });
        self.queue.schedule(
            now + cpu,
            Event::CpuDone {
                job,
                task,
                node: dst,
                epoch: self.node_epoch[dst.index()],
            },
        );
    }

    fn handle_cpu_done(&mut self, job: usize, task: usize, node: NodeId, epoch: u64, now: SimTime) {
        if epoch != self.node_epoch[node.index()] {
            // The worker died while this task computed: its slot vanished
            // with the crash; the work must be redone elsewhere.
            if !self.jobs[job].finished {
                self.fstats.tasks_rerun += 1;
                self.pending.push_back((job, task));
                self.schedule_tasks(now);
            }
            return;
        }
        self.free_slots[node.index()] += 1;
        if self.jobs[job].finished {
            self.schedule_tasks(now);
            return;
        }
        self.jobs[job].done += 1;
        if self.jobs[job].done == self.jobs[job].tasks.len() {
            self.start_output_write(job, now);
        }
        self.schedule_tasks(now);
    }

    fn start_output_write(&mut self, job: usize, now: SimTime) {
        let spec_idx = self.jobs[job].spec;
        let spec = &self.trace.jobs[spec_idx];
        let out_path = format!("/out/{}/job{:05}", self.trace.kind.label(), spec_idx);
        self.jobs[job].output_write_start = now;
        match self.dfs.create_file(&out_path, spec.output_size, now) {
            Ok(plan) => {
                self.jobs[job].output_file = Some(plan.file);
                self.jobs[job].output_flows = plan.blocks.len();
                for bw in &plan.blocks {
                    let id = FlowId(self.flow_ids.next_raw());
                    let path = self.resources.write_pipeline_path(&bw.replicas);
                    self.flows.start_flow(now, id, bw.size, path);
                    self.flow_purpose
                        .insert(id, FlowPurpose::OutputBlock { job });
                }
            }
            Err(_) => {
                // No room anywhere for the output: finish without it.
                self.finish_job(job, now);
            }
        }
    }

    fn finish_output_block(&mut self, job: usize, now: SimTime) {
        self.jobs[job].output_flows -= 1;
        if self.jobs[job].output_flows > 0 {
            return;
        }
        let file = self.jobs[job].output_file.expect("output in progress");
        self.dfs
            .commit_file(file, now)
            .expect("output just written");
        // A crash mid-write may have left this file's replicas dead; they
        // only become visible to the degraded set once it is committed.
        self.refresh_heal_state(now);
        self.engine.notify_created(&self.dfs, file, now);
        let spec = &self.trace.jobs[self.jobs[job].spec];
        if !spec.output_durable {
            self.queue
                .schedule(now + self.cfg.output_ttl, Event::DeleteTemp(file));
        }
        self.finish_job(job, now);
        self.check_downgrades(now);
    }

    fn finish_job(&mut self, job: usize, now: SimTime) {
        let j = &mut self.jobs[job];
        debug_assert!(!j.finished, "double finish");
        j.finished = true;
        j.completion = now;
        self.jobs_remaining -= 1;
    }

    /// Abandons a job whose input can never be read again (a block lost
    /// every replica): its queued tasks are purged; reads already in flight
    /// release their slots as they land.
    fn fail_job(&mut self, job: usize, now: SimTime) {
        if self.jobs[job].finished {
            return;
        }
        self.finish_job(job, now);
        self.jobs[job].failed = true;
        self.fstats.failed_jobs += 1;
        self.pending.retain(|&(j, _)| j != job);
        self.blocked.retain(|&(j, _)| j != job);
    }

    fn handle_monitor(&mut self, now: SimTime) {
        self.monitor_armed = false;
        self.engine.tick(&self.dfs, now);
        let planned = self.engine.run_upgrade(&mut self.dfs, None, now);
        self.execute_transfers(planned, now);
        self.check_downgrades(now);
        if !self.cfg.faults.is_empty() || self.dfs.config().has_erasure() {
            // The Replication Monitor's repair epoch: restore redundancy
            // (re-replication and stripe reconstruction, interleaved)
            // within the per-epoch byte budget. With erasure coding it also
            // runs fault-free: de-striping upgrades leave a single replica
            // behind that the monitor tops back up to the tier's target.
            let planned = self.repair.plan_epoch_pooled(&mut self.dfs, &self.pool);
            self.execute_transfers(planned, now);
            self.unpark_ready_tasks(now);
            // A permanently dead cluster (every worker down, nobody coming
            // back) can make no progress: fail the submitted jobs so the
            // run terminates instead of ticking into the horizon assert.
            if self.dfs.nodes().alive_count() == 0
                && self.pending_recoveries.iter().all(|n| *n == 0)
            {
                for job in 0..self.jobs.len() {
                    self.fail_job(job, now);
                }
            }
        }
        // Keep ticking while there is anything left to drive.
        if self.jobs_remaining > 0 || self.dfs.transfers_in_flight() > 0 {
            self.arm_monitor(now);
        }
    }

    fn arm_monitor(&mut self, now: SimTime) {
        if !self.monitor_armed {
            self.monitor_armed = true;
            self.queue
                .schedule(now + self.cfg.monitor_interval, Event::Monitor);
        }
    }

    fn handle_delete_temp(&mut self, file: FileId, now: SimTime) {
        match self.dfs.delete_file(file) {
            Ok(_) => {
                self.engine.notify_deleted(file, now);
                if let Some(cache) = self.cache.as_mut() {
                    cache.invalidate_file(file);
                }
            }
            Err(e) if e.kind() == "invalid_state" => {
                // A transfer is in flight for it; try again shortly.
                self.queue
                    .schedule(now + SimDuration::from_mins(2), Event::DeleteTemp(file));
            }
            Err(_) => {} // already gone
        }
    }

    /// Deletes a trace input dataset. The trace compiler guarantees no job
    /// *submits* at or after the deletion instant, but jobs submitted
    /// earlier may still be reading the file — deletion politely waits for
    /// them (and for any in-flight policy transfer) with a short retry.
    fn handle_delete_input(&mut self, idx: usize, now: SimTime) {
        let Some(file) = self.file_map[idx] else {
            return; // never ingested (cluster was out of space)
        };
        let busy = self
            .jobs
            .iter()
            .any(|j| !j.finished && self.trace.jobs[j.spec].input == idx);
        if busy {
            self.queue
                .schedule(now + SimDuration::from_mins(2), Event::DeleteInput(idx));
            return;
        }
        match self.dfs.delete_file(file) {
            Ok(_) => {
                self.engine.notify_deleted(file, now);
                if let Some(cache) = self.cache.as_mut() {
                    cache.invalidate_file(file);
                }
                self.file_map[idx] = None;
                // Deleting an under-replicated file can empty the degraded
                // set: the availability clock must see that transition.
                self.refresh_heal_state(now);
            }
            Err(e) if e.kind() == "invalid_state" => {
                // A transfer is in flight for it; try again shortly.
                self.queue
                    .schedule(now + SimDuration::from_mins(2), Event::DeleteInput(idx));
            }
            Err(_) => {} // already gone (e.g. lost to a fault)
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    fn handle_fault(&mut self, idx: usize, now: SimTime) {
        let ev = self.cfg.faults.events()[idx];
        match ev.kind {
            FaultKind::Crash => self.apply_crash(ev.node, now),
            FaultKind::Recover => self.apply_recovery(ev.node, now),
            FaultKind::DiskLoss(tier) => self.apply_disk_loss(ev.node, tier, now),
        }
    }

    /// Registers a fault instant: the heal clock restarts, and
    /// `refresh_heal_state` re-stamps it right away when the fault turned
    /// out not to degrade anything.
    fn note_fault(&mut self, now: SimTime) {
        self.fstats.last_fault_at = Some(now);
        self.fstats.full_replication_at = None;
    }

    fn apply_crash(&mut self, node: NodeId, now: SimTime) {
        self.fstats.crashes += 1;
        self.note_fault(now);
        let failure = self
            .dfs
            .fail_node(node)
            .expect("schedule alternation valid");
        self.kill_transfer_flows(&failure.cancelled_transfers, now);

        // Reads served by the node (source died) or running on it (reader
        // died) fail mid-flight. Sorted by flow id: `flow_purpose` is a
        // HashMap and the retry order must stay deterministic.
        let mut dead_reads: Vec<DeadRead> = self
            .flow_purpose
            .iter()
            .filter_map(|(fid, p)| match *p {
                FlowPurpose::Read {
                    job,
                    task,
                    src,
                    dst,
                    ..
                } if src.0 == node || dst == node => Some((*fid, job, task, src, dst)),
                _ => None,
            })
            .collect();
        dead_reads.sort_unstable_by_key(|t| t.0);
        // The node serves nothing and runs nothing until it recovers; every
        // CpuDone scheduled under the old epoch is now stale.
        self.node_epoch[node.index()] += 1;
        self.free_slots[node.index()] = 0;
        for (fid, job, task, src, dst) in dead_reads {
            self.flows.cancel_flow(now, fid);
            self.flow_purpose.remove(&fid);
            self.dfs.io_finished(src.0, src.1);
            self.fstats.failed_reads += 1;
            if dst == node {
                // The reader died with its slot; the task re-runs elsewhere.
                if !self.jobs[job].finished {
                    self.pending.push_back((job, task));
                }
            } else {
                // The source died; the reader retries from another replica
                // without giving up its slot.
                self.start_task_read(job, task, dst, now);
            }
        }
        self.refresh_heal_state(now);
        self.arm_monitor(now);
        self.schedule_tasks(now);
    }

    fn apply_recovery(&mut self, node: NodeId, now: SimTime) {
        self.fstats.recoveries += 1;
        self.pending_recoveries[node.index()] -= 1;
        self.dfs
            .recover_node(node)
            .expect("schedule alternation valid");
        self.free_slots[node.index()] = self.cfg.slots_per_node;
        self.unpark_ready_tasks(now);
        self.refresh_heal_state(now);
        if self.dfs.has_under_redundant() {
            self.arm_monitor(now);
        }
        self.schedule_tasks(now);
    }

    fn apply_disk_loss(&mut self, node: NodeId, tier: StorageTier, now: SimTime) {
        self.fstats.disk_losses += 1;
        self.note_fault(now);
        let failure = self.dfs.lose_device(node, tier).expect("device exists");
        self.kill_transfer_flows(&failure.cancelled_transfers, now);
        // Reads streaming from the destroyed device retry from another
        // replica; the reader keeps its slot.
        let mut dead_reads: Vec<(FlowId, usize, usize, NodeId)> = self
            .flow_purpose
            .iter()
            .filter_map(|(fid, p)| match *p {
                FlowPurpose::Read {
                    job,
                    task,
                    src,
                    dst,
                    ..
                } if src == (node, tier) => Some((*fid, job, task, dst)),
                _ => None,
            })
            .collect();
        dead_reads.sort_unstable_by_key(|t| t.0);
        for (fid, job, task, dst) in dead_reads {
            self.flows.cancel_flow(now, fid);
            self.flow_purpose.remove(&fid);
            self.dfs.io_finished(node, tier);
            self.fstats.failed_reads += 1;
            self.start_task_read(job, task, dst, now);
        }
        self.refresh_heal_state(now);
        self.arm_monitor(now);
        self.schedule_tasks(now);
    }

    /// Anchor device for an erasure-coded read of `block`, if its stripe can
    /// decode right now (≥ `k` live shards). The flow is modelled from one
    /// shard — local to the reader if possible, else the fastest tier —
    /// and the bool reports whether the read is *degraded* (a data shard is
    /// missing, so the reader must pull parity and reconstruct).
    fn stripe_read_source(
        &self,
        block: octo_common::BlockId,
        reader: NodeId,
    ) -> Option<((NodeId, StorageTier), bool)> {
        let s = self.dfs.blocks().stripe(block)?;
        if !s.is_readable() {
            return None;
        }
        let anchor = s.shards.iter().filter(|sh| !sh.dead).max_by_key(|sh| {
            (
                sh.node == reader,
                sh.tier.rank(),
                std::cmp::Reverse(sh.node),
            )
        })?;
        Some(((anchor.node, anchor.tier), s.needs_degraded_read()))
    }

    /// True when `block` can serve a read right now: a live replica, or an
    /// erasure-coded stripe with enough live shards to decode.
    fn block_readable(&self, block: octo_common::BlockId) -> bool {
        !self.dfs.block_info(block).is_unavailable()
            || self
                .dfs
                .blocks()
                .stripe(block)
                .is_some_and(|s| s.is_readable())
    }

    /// True when some dead replica or shard of `block` sits on a node with
    /// a recovery still scheduled — the block may become readable again
    /// without repair, so parked tasks should wait rather than fail.
    fn block_recoverable(&self, block: octo_common::BlockId) -> bool {
        let will_recover = |n: NodeId| self.pending_recoveries[n.index()] > 0;
        self.dfs
            .block_info(block)
            .replicas()
            .iter()
            .any(|r| r.dead && will_recover(r.node))
            || self
                .dfs
                .blocks()
                .stripe(block)
                .is_some_and(|s| s.shards.iter().any(|sh| sh.dead && will_recover(sh.node)))
    }

    /// Re-queues parked tasks whose block is readable again. Tasks whose
    /// block is still unavailable stay parked without a read attempt (so
    /// `failed_reads` counts genuine dispatch failures, not poll retries);
    /// tasks whose block can no longer come back fail their job.
    fn unpark_ready_tasks(&mut self, now: SimTime) {
        if self.blocked.is_empty() {
            return;
        }
        let blocked = std::mem::take(&mut self.blocked);
        for (job, task) in blocked {
            if self.jobs[job].finished {
                continue;
            }
            let block = self.jobs[job].tasks[task].block;
            if self.block_readable(block) {
                self.pending.push_back((job, task));
            } else if self.block_recoverable(block) {
                self.blocked.push((job, task));
            } else {
                // Every copy is gone and nobody is coming back for the
                // dead ones: the input is lost.
                self.fail_job(job, now);
            }
        }
        self.schedule_tasks(now);
    }

    /// Cancels the I/O flows of transfers the DFS already cancelled.
    fn kill_transfer_flows(&mut self, cancelled: &[TransferId], now: SimTime) {
        if cancelled.is_empty() {
            return;
        }
        let set: HashSet<TransferId> = cancelled.iter().copied().collect();
        let mut flows: Vec<FlowId> = self
            .flow_purpose
            .iter()
            .filter_map(|(fid, p)| match p {
                FlowPurpose::TransferBlock { id } if set.contains(id) => Some(*fid),
                _ => None,
            })
            .collect();
        flows.sort_unstable();
        for fid in flows {
            self.flows.cancel_flow(now, fid);
            self.flow_purpose.remove(&fid);
        }
        for id in cancelled {
            self.transfer_blocks.remove(id);
        }
    }

    /// Tracks the degraded → fully-replicated transition for the
    /// time-to-full-replication availability metric.
    fn refresh_heal_state(&mut self, now: SimTime) {
        if self.cfg.faults.is_empty() {
            return;
        }
        if self.dfs.has_under_redundant() {
            self.fstats.full_replication_at = None;
        } else if self.fstats.last_fault_at.is_some() && self.fstats.full_replication_at.is_none() {
            self.fstats.full_replication_at = Some(now);
        }
    }

    // ------------------------------------------------------------------
    // Replica movement execution
    // ------------------------------------------------------------------

    fn check_downgrades(&mut self, now: SimTime) {
        for tier in [StorageTier::Memory, StorageTier::Ssd] {
            let planned = self
                .engine
                .run_downgrade_pooled(&mut self.dfs, tier, now, &self.pool);
            self.execute_transfers(planned, now);
        }
    }

    fn execute_transfers(&mut self, planned: Vec<TransferId>, now: SimTime) {
        for id in planned {
            // Extract only what the flows need instead of cloning the whole
            // transfer (with its per-block action list) for each plan.
            let moving: Vec<MovingBlock> = self
                .dfs
                .transfer(id)
                .expect("just planned")
                .blocks
                .iter()
                .filter(|bt| bt.action.moves_bytes())
                .map(|bt| {
                    let dst = bt.action.destination().expect("moving actions land");
                    (bt.size, bt.action.source(), dst)
                })
                .collect();
            if moving.is_empty() {
                // Pure drops apply instantly.
                self.dfs.complete_transfer(id).expect("drop-only transfer");
                continue;
            }
            self.transfer_blocks.insert(id, moving.len());
            for (size, src, dst) in moving {
                let fid = FlowId(self.flow_ids.next_raw());
                let path = self.resources.transfer_path(src, dst);
                self.flows.start_flow(now, fid, size, path);
                self.flow_purpose
                    .insert(fid, FlowPurpose::TransferBlock { id });
            }
        }
    }

    fn finish_transfer_block(&mut self, id: TransferId, now: SimTime) {
        let remaining = self
            .transfer_blocks
            .get_mut(&id)
            .expect("transfer in progress");
        *remaining -= 1;
        if *remaining > 0 {
            return;
        }
        self.transfer_blocks.remove(&id);
        let t = self.dfs.complete_transfer(id).expect("all blocks landed");
        if t.kind == octo_dfs::TransferKind::Repair {
            self.refresh_heal_state(now);
        }
        // Upgrades and repairs fill tiers: re-check the downgrade trigger.
        if t.kind != octo_dfs::TransferKind::Downgrade {
            self.check_downgrades(now);
        }
    }

    /// Schedules the next flow-completion wakeup (stale ones are ignored).
    /// Batched per flow-model version: if the model has not changed since
    /// the last scheduled wakeup, that wakeup is still valid and nothing
    /// needs recomputing.
    fn pump(&mut self) {
        if self.scheduled_flow_version == Some(self.flows.version()) {
            return;
        }
        if let Some((t, v)) = self.flows.next_completion(self.queue.now()) {
            self.queue.schedule(t, Event::FlowTick { version: v });
            self.scheduled_flow_version = Some(v);
        }
    }
}

/// Bytes a degraded erasure-coded read actually moves: `penalty × size`,
/// rounded **up**. The old `as u64` cast truncated toward zero, which let
/// an amplified read carry fewer bytes than its nominal amplification (and,
/// for sub-byte products, fewer than a naive reading of the model implies).
/// Ceiling keeps the invariant `amplified >= size` for any penalty ≥ 1.
fn amplified_read_bytes(size: ByteSize, penalty: f64) -> ByteSize {
    ByteSize::from_bytes((size.as_bytes() as f64 * penalty).ceil() as u64)
}

/// Convenience: build and run in one call.
pub fn run_trace(cfg: SimConfig, trace: &Trace) -> RunReport {
    ClusterSim::new(cfg, trace).run()
}

/// Compiles an event-level access trace (parsed JSONL/CSV or a
/// `octo_workload::synth` product) and runs it in one call. The report's
/// workload label is the trace's name rather than the generic `SYN` tag,
/// so matrix reports stay readable.
pub fn run_event_trace(
    cfg: SimConfig,
    events: &EventTrace,
    compile: &CompileConfig,
) -> Result<RunReport, TraceError> {
    let trace = events.compile(compile)?;
    let mut report = run_trace(cfg, &trace);
    report.workload = events.name.clone();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the truncating `as u64` cast: a 1-byte degraded read
    /// at penalty 1.5 must carry 2 bytes (ceiling), not 1 (floor). The old
    /// code returned 1 here — amplification silently rounded away.
    #[test]
    fn degraded_read_amplification_rounds_up() {
        assert_eq!(
            amplified_read_bytes(ByteSize::from_bytes(1), 1.5),
            ByteSize::from_bytes(2)
        );
        assert_eq!(
            amplified_read_bytes(ByteSize::from_bytes(3), 1.5),
            ByteSize::from_bytes(5),
            "4.5 bytes of traffic round up to 5"
        );
        // Integral products are exact — which is why the pinned EC(4,2)
        // golden digest did not move with this fix: quick-run blocks are
        // whole mebibytes, so penalty × size never had a fractional part.
        assert_eq!(
            amplified_read_bytes(ByteSize::mb(128), 1.5),
            ByteSize::mb(192)
        );
    }

    /// The model invariant: an amplified read never carries fewer bytes
    /// than the block itself for any penalty ≥ 1.
    #[test]
    fn degraded_read_amplification_never_shrinks() {
        for bytes in [1u64, 3, 7, 1000, 128 * 1024 * 1024, u32::MAX as u64] {
            for penalty in [1.0, 1.1, 1.5, 2.0, 3.7] {
                let size = ByteSize::from_bytes(bytes);
                let amplified = amplified_read_bytes(size, penalty);
                assert!(
                    amplified >= size,
                    "amplified({bytes}, {penalty}) = {} < {bytes}",
                    amplified.as_bytes()
                );
            }
        }
    }
}
