//! Raw per-run results the metrics crate aggregates into paper tables.

use octo_common::{ByteSize, SimDuration, SimTime, StorageTier};
use octo_dfs::{CacheStats, MovementStats};
use octo_workload::SizeBin;
use serde::{Deserialize, Serialize};

/// Availability and repair statistics of a run under fault injection.
/// All-zero (the `Default`) for runs without a fault schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Node crashes applied.
    pub crashes: u64,
    /// Node recoveries applied.
    pub recoveries: u64,
    /// Permanent device losses applied.
    pub disk_losses: u64,
    /// Reads that failed because the serving replica's node died mid-read
    /// or no live replica existed at dispatch (retries counted each time).
    pub failed_reads: u64,
    /// Tasks re-run because their worker crashed while they computed.
    pub tasks_rerun: u64,
    /// Jobs abandoned because an input block was lost for good.
    pub failed_jobs: u64,
    /// Files that ended the run with at least one replica-less block.
    pub lost_files: u64,
    /// Bytes written by completed repair transfers.
    pub bytes_re_replicated: ByteSize,
    /// Bytes of erasure-coded shards rebuilt by reconstruction repair
    /// (disjoint from `bytes_re_replicated`).
    pub bytes_reconstructed: ByteSize,
    /// Erasure-coded stripe shards rebuilt by reconstruction repair.
    pub stripes_rebuilt: u64,
    /// Task reads served by decoding an erasure-coded stripe that was
    /// missing a data shard (each pays the degraded-read amplification).
    pub reads_degraded_ec: u64,
    /// Completed repair transfers.
    pub repairs_completed: u64,
    /// When the last fault event fired.
    pub last_fault_at: Option<SimTime>,
    /// When the cluster last transitioned back to "every committed file
    /// fully replicated" (None if it never got there, or never degraded).
    pub full_replication_at: Option<SimTime>,
    /// Outstanding repair debt at run end: bytes the repair pipeline would
    /// still have to write to restore full redundancy (whole blocks per
    /// missing replica, single shards per dead EC shard). Zero for a
    /// quiesced run.
    pub repair_debt_bytes: ByteSize,
}

impl FaultSummary {
    /// Time from the last fault until full replication was restored —
    /// the paper-style "time to re-protect the data" metric. `None` while
    /// the run ended degraded or saw no faults.
    pub fn time_to_full_replication(&self) -> Option<SimDuration> {
        match (self.last_fault_at, self.full_replication_at) {
            (Some(fault), Some(healed)) if healed >= fault => Some(healed.duration_since(fault)),
            _ => None,
        }
    }
}

/// One task's I/O record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskStat {
    /// Tier the input block was actually read from.
    pub read_tier: StorageTier,
    /// True when the read crossed the network.
    pub remote: bool,
    /// Input bytes read.
    pub bytes: ByteSize,
    /// True if the block had a memory replica somewhere at read time —
    /// feeds the "HR by location" metric of Figure 9.
    pub had_memory_replica: bool,
    /// Seconds spent reading input.
    pub read_secs: f64,
    /// Seconds spent computing (includes startup overhead).
    pub cpu_secs: f64,
}

/// One job's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Size bin (Table 3 grouping).
    pub bin: SizeBin,
    /// Submission time.
    pub submit: SimTime,
    /// Completion time (output committed).
    pub finish: SimTime,
    /// Input bytes (whole file).
    pub input_bytes: ByteSize,
    /// Output bytes written.
    pub output_bytes: ByteSize,
    /// Per-task records.
    pub tasks: Vec<TaskStat>,
    /// Seconds the output write took.
    pub output_write_secs: f64,
    /// True when the job was abandoned because an input block was lost
    /// (only possible under fault injection).
    pub failed: bool,
}

impl JobResult {
    /// Wall-clock completion time in seconds.
    pub fn completion_secs(&self) -> f64 {
        self.finish.duration_since(self.submit).as_secs_f64()
    }

    /// Total resource consumption in task-seconds (read + compute + output
    /// write) — the cluster-efficiency currency of §7.2.
    pub fn task_seconds(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.read_secs + t.cpu_secs)
            .sum::<f64>()
            + self.output_write_secs
    }

    /// Fraction of tasks served from the memory tier.
    pub fn memory_served_tasks(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.read_tier == StorageTier::Memory)
            .count()
    }
}

/// A complete simulation outcome for one scenario × workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Scenario label (e.g. "HDFS", "XGB-XGB").
    pub scenario: String,
    /// Workload label (e.g. "FB").
    pub workload: String,
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobResult>,
    /// Replica-movement statistics accumulated by the DFS.
    pub movement: MovementStats,
    /// When the last event fired.
    pub sim_end: SimTime,
    /// Bytes of job input read from each tier, cluster-wide.
    pub bytes_read_by_tier: [ByteSize; 3],
    /// Availability/repair statistics (all-zero without a fault schedule).
    pub faults: FaultSummary,
    /// Block-cache counters (all-zero when the cache is disabled).
    pub cache: CacheStats,
}

impl RunReport {
    /// Total bytes of input read.
    pub fn total_read(&self) -> ByteSize {
        self.bytes_read_by_tier.iter().copied().sum()
    }

    /// Bytes read from memory.
    pub fn read_from_memory(&self) -> ByteSize {
        self.bytes_read_by_tier[StorageTier::Memory.index()]
    }

    /// Mean completion time of *successful* jobs in seconds. Jobs
    /// abandoned to data loss are excluded — their "completion" is the
    /// failure instant, and counting it would reward lossy configurations
    /// with a lower mean.
    pub fn mean_completion_secs(&self) -> f64 {
        let done: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| !j.failed)
            .map(|j| j.completion_secs())
            .collect();
        if done.is_empty() {
            return 0.0;
        }
        done.iter().sum::<f64>() / done.len() as f64
    }

    /// Total task-seconds across all jobs.
    pub fn total_task_seconds(&self) -> f64 {
        self.jobs.iter().map(|j| j.task_seconds()).sum()
    }
}
