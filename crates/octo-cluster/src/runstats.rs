//! Raw per-run results the metrics crate aggregates into paper tables.

use octo_common::{ByteSize, SimTime, StorageTier};
use octo_dfs::MovementStats;
use octo_workload::SizeBin;
use serde::{Deserialize, Serialize};

/// One task's I/O record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskStat {
    /// Tier the input block was actually read from.
    pub read_tier: StorageTier,
    /// True when the read crossed the network.
    pub remote: bool,
    /// Input bytes read.
    pub bytes: ByteSize,
    /// True if the block had a memory replica somewhere at read time —
    /// feeds the "HR by location" metric of Figure 9.
    pub had_memory_replica: bool,
    /// Seconds spent reading input.
    pub read_secs: f64,
    /// Seconds spent computing (includes startup overhead).
    pub cpu_secs: f64,
}

/// One job's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Size bin (Table 3 grouping).
    pub bin: SizeBin,
    /// Submission time.
    pub submit: SimTime,
    /// Completion time (output committed).
    pub finish: SimTime,
    /// Input bytes (whole file).
    pub input_bytes: ByteSize,
    /// Output bytes written.
    pub output_bytes: ByteSize,
    /// Per-task records.
    pub tasks: Vec<TaskStat>,
    /// Seconds the output write took.
    pub output_write_secs: f64,
}

impl JobResult {
    /// Wall-clock completion time in seconds.
    pub fn completion_secs(&self) -> f64 {
        self.finish.duration_since(self.submit).as_secs_f64()
    }

    /// Total resource consumption in task-seconds (read + compute + output
    /// write) — the cluster-efficiency currency of §7.2.
    pub fn task_seconds(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.read_secs + t.cpu_secs)
            .sum::<f64>()
            + self.output_write_secs
    }

    /// Fraction of tasks served from the memory tier.
    pub fn memory_served_tasks(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.read_tier == StorageTier::Memory)
            .count()
    }
}

/// A complete simulation outcome for one scenario × workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Scenario label (e.g. "HDFS", "XGB-XGB").
    pub scenario: String,
    /// Workload label (e.g. "FB").
    pub workload: String,
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobResult>,
    /// Replica-movement statistics accumulated by the DFS.
    pub movement: MovementStats,
    /// When the last event fired.
    pub sim_end: SimTime,
    /// Bytes of job input read from each tier, cluster-wide.
    pub bytes_read_by_tier: [ByteSize; 3],
}

impl RunReport {
    /// Total bytes of input read.
    pub fn total_read(&self) -> ByteSize {
        self.bytes_read_by_tier.iter().copied().sum()
    }

    /// Bytes read from memory.
    pub fn read_from_memory(&self) -> ByteSize {
        self.bytes_read_by_tier[StorageTier::Memory.index()]
    }

    /// Mean job completion time in seconds.
    pub fn mean_completion_secs(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().map(|j| j.completion_secs()).sum::<f64>() / self.jobs.len() as f64
    }

    /// Total task-seconds across all jobs.
    pub fn total_task_seconds(&self) -> f64 {
        self.jobs.iter().map(|j| j.task_seconds()).sum()
    }
}
