//! Mapping from cluster hardware to flow-model resources.

use octo_common::{NodeId, StorageTier};
use octo_dfs::DfsConfig;
use octo_simkit::{FlowModel, ResourceId};

/// Resource handles for every device and NIC in the cluster.
#[derive(Debug, Clone)]
pub struct ResourceMap {
    devices: Vec<[ResourceId; 3]>,
    nics: Vec<ResourceId>,
}

impl ResourceMap {
    /// Registers one resource per `(node, tier)` device and one per NIC.
    pub fn new(config: &DfsConfig, flows: &mut FlowModel) -> Self {
        let mut devices = Vec::with_capacity(config.workers as usize);
        let mut nics = Vec::with_capacity(config.workers as usize);
        for _ in 0..config.workers {
            let d = [
                flows.add_resource(config.tier_bandwidth_bps(StorageTier::Memory)),
                flows.add_resource(config.tier_bandwidth_bps(StorageTier::Ssd)),
                flows.add_resource(config.tier_bandwidth_bps(StorageTier::Hdd)),
            ];
            devices.push(d);
            nics.push(flows.add_resource(config.nic_bandwidth_bps()));
        }
        ResourceMap { devices, nics }
    }

    /// The resource of a storage device.
    pub fn device(&self, node: NodeId, tier: StorageTier) -> ResourceId {
        self.devices[node.index()][tier.index()]
    }

    /// The resource of a node's NIC.
    pub fn nic(&self, node: NodeId) -> ResourceId {
        self.nics[node.index()]
    }

    /// Path for reading `bytes` from `(src_node, tier)` into `dst_node`.
    pub fn read_path(&self, src: (NodeId, StorageTier), dst_node: NodeId) -> Vec<ResourceId> {
        if src.0 == dst_node {
            vec![self.device(src.0, src.1)]
        } else {
            vec![
                self.device(src.0, src.1),
                self.nic(src.0),
                self.nic(dst_node),
            ]
        }
    }

    /// Path for a replication pipeline writing one block to `replicas`:
    /// every destination device plus the NICs of all distinct nodes when the
    /// pipeline crosses the network (HDFS chain replication — the write
    /// rate is bottlenecked by the slowest element, §3.1).
    pub fn write_pipeline_path(&self, replicas: &[(NodeId, StorageTier)]) -> Vec<ResourceId> {
        let mut path: Vec<ResourceId> = replicas.iter().map(|(n, t)| self.device(*n, *t)).collect();
        let mut nodes: Vec<NodeId> = replicas.iter().map(|(n, _)| *n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.len() > 1 {
            for n in nodes {
                path.push(self.nic(n));
            }
        }
        path
    }

    /// Path for moving one block from `src` to `dst` (tier transfer).
    pub fn transfer_path(
        &self,
        src: (NodeId, StorageTier),
        dst: (NodeId, StorageTier),
    ) -> Vec<ResourceId> {
        let mut path = vec![self.device(src.0, src.1), self.device(dst.0, dst.1)];
        if src.0 != dst.0 {
            path.push(self.nic(src.0));
            path.push(self.nic(dst.0));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> (ResourceMap, FlowModel) {
        let mut flows = FlowModel::new();
        let cfg = DfsConfig {
            workers: 3,
            ..DfsConfig::default()
        };
        (ResourceMap::new(&cfg, &mut flows), flows)
    }

    #[test]
    fn resources_are_distinct() {
        let (m, flows) = map();
        let mut all = Vec::new();
        for n in 0..3u32 {
            for t in StorageTier::ALL {
                all.push(m.device(NodeId(n), t));
            }
            all.push(m.nic(NodeId(n)));
        }
        let count = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), count, "every device/NIC gets its own resource");
        // 3 nodes × (3 devices + 1 nic) = 12 resources registered.
        assert!(flows.capacity(m.nic(NodeId(0))) > 0.0);
    }

    #[test]
    fn local_read_path_has_no_nic() {
        let (m, _) = map();
        let p = m.read_path((NodeId(1), StorageTier::Ssd), NodeId(1));
        assert_eq!(p, vec![m.device(NodeId(1), StorageTier::Ssd)]);
    }

    #[test]
    fn remote_read_crosses_both_nics() {
        let (m, _) = map();
        let p = m.read_path((NodeId(0), StorageTier::Hdd), NodeId(2));
        assert_eq!(p.len(), 3);
        assert!(p.contains(&m.nic(NodeId(0))));
        assert!(p.contains(&m.nic(NodeId(2))));
    }

    #[test]
    fn write_pipeline_includes_all_devices() {
        let (m, _) = map();
        let replicas = vec![
            (NodeId(0), StorageTier::Memory),
            (NodeId(1), StorageTier::Ssd),
            (NodeId(2), StorageTier::Hdd),
        ];
        let p = m.write_pipeline_path(&replicas);
        // 3 devices + 3 NICs.
        assert_eq!(p.len(), 6);
        // Single-node single-replica write: no NIC.
        let p1 = m.write_pipeline_path(&[(NodeId(0), StorageTier::Hdd)]);
        assert_eq!(p1.len(), 1);
    }

    #[test]
    fn transfer_path_local_vs_remote() {
        let (m, _) = map();
        let local = m.transfer_path(
            (NodeId(0), StorageTier::Memory),
            (NodeId(0), StorageTier::Ssd),
        );
        assert_eq!(local.len(), 2);
        let remote = m.transfer_path(
            (NodeId(0), StorageTier::Memory),
            (NodeId(1), StorageTier::Ssd),
        );
        assert_eq!(remote.len(), 4);
    }
}
